// Big-endian (network order) byte encoding and decoding over contiguous
// buffers. All protocol headers in this library are serialized through
// these helpers so byte-order handling lives in exactly one place.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

namespace reorder::util {

/// Appends network-order encoded integers to a growable byte vector.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_{out} {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v & 0xff));
  }
  void u32(std::uint32_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 24));
    out_.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
    out_.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
    out_.push_back(static_cast<std::uint8_t>(v & 0xff));
  }
  void bytes(std::span<const std::uint8_t> b) {
    out_.insert(out_.end(), b.begin(), b.end());
  }
  /// Number of bytes written so far through this writer's target.
  std::size_t size() const { return out_.size(); }
  /// Patches a previously written big-endian u16 at absolute offset `at`.
  void patch_u16(std::size_t at, std::uint16_t v) {
    out_.at(at) = static_cast<std::uint8_t>(v >> 8);
    out_.at(at + 1) = static_cast<std::uint8_t>(v & 0xff);
  }

 private:
  std::vector<std::uint8_t>& out_;
};

/// Thrown when a parse runs off the end of its buffer or sees an
/// inconsistent length field.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error{what} {}
};

/// Reads network-order integers from a byte span, bounds-checked.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> in) : in_{in} {}

  std::uint8_t u8() {
    need(1);
    return in_[pos_++];
  }
  std::uint16_t u16() {
    need(2);
    const std::uint16_t v = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(in_[pos_]) << 8) | in_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    need(4);
    const std::uint32_t v = (static_cast<std::uint32_t>(in_[pos_]) << 24) |
                            (static_cast<std::uint32_t>(in_[pos_ + 1]) << 16) |
                            (static_cast<std::uint32_t>(in_[pos_ + 2]) << 8) |
                            static_cast<std::uint32_t>(in_[pos_ + 3]);
    pos_ += 4;
    return v;
  }
  std::span<const std::uint8_t> bytes(std::size_t n) {
    need(n);
    auto s = in_.subspan(pos_, n);
    pos_ += n;
    return s;
  }
  void skip(std::size_t n) {
    need(n);
    pos_ += n;
  }
  std::size_t remaining() const { return in_.size() - pos_; }
  std::size_t position() const { return pos_; }

 private:
  void need(std::size_t n) const {
    if (in_.size() - pos_ < n) throw ParseError{"buffer underrun"};
  }
  std::span<const std::uint8_t> in_;
  std::size_t pos_{0};
};

}  // namespace reorder::util
