#include "tcpip/host.hpp"

#include <utility>

#include "util/buffer_pool.hpp"
#include "util/logging.hpp"

namespace reorder::tcpip {

std::uint8_t object_byte(std::size_t index) {
  return static_cast<std::uint8_t>((index * 31 + 7) & 0xff);
}

std::vector<std::uint8_t> make_object(std::size_t size) {
  std::vector<std::uint8_t> out(size);
  for (std::size_t i = 0; i < size; ++i) out[i] = object_byte(i);
  return out;
}

Host::Host(Environment& env, HostConfig config)
    : env_{env},
      config_{std::move(config)},
      ipid_{make_ipid_generator(config_.ipid_policy, config_.seed * 7919 + 13,
                                config_.ipid_initial)},
      rng_{config_.seed} {}

TcpEndpoint* Host::find_endpoint(const ConnKey& key) {
  const auto it = endpoints_.find(key);
  return it == endpoints_.end() ? nullptr : it->second.get();
}

void Host::receive(const Packet& pkt) {
  if (pkt.ip.dst != config_.address) return;  // not ours; hosts do not route
  if (pkt.ip.protocol == IpProto::kIcmp) {
    ++counters_.packets_in;
    handle_icmp(pkt);
    return;
  }
  if (pkt.ip.protocol != IpProto::kTcp) return;
  ++counters_.packets_in;

  const ConnKey key{pkt.tcp.dst_port, pkt.ip.src, pkt.tcp.src_port};
  if (auto* ep = find_endpoint(key)) {
    ep->on_segment(pkt);
    return;
  }
  if (pkt.tcp.is_syn() && !pkt.tcp.is_ack() && config_.listeners.contains(pkt.tcp.dst_port)) {
    // Flaky-host behaviour: the opening SYN silently vanishes (no RST —
    // the prober can only wait it out and retransmit).
    if (config_.syn_drop_probability > 0.0 && rng_.bernoulli(config_.syn_drop_probability)) {
      ++counters_.syn_dropped;
      return;
    }
    accept_connection(pkt);
    return;
  }
  if (config_.rst_closed_ports && !pkt.tcp.is_rst()) {
    ++counters_.rst_closed_port;
    send_rst_for(pkt);
  }
}

void Host::handle_icmp(const Packet& pkt) {
  if (!config_.respond_to_ping) return;
  if (!pkt.icmp.has_value() || pkt.icmp->type != IcmpType::kEchoRequest) return;
  if (config_.ping_rate_limit_per_sec > 0) {
    const util::TimePoint now = env_.now();
    if ((now - ping_window_start_) >= util::Duration::seconds(1)) {
      ping_window_start_ = now;
      ping_window_count_ = 0;
    }
    if (ping_window_count_ >= config_.ping_rate_limit_per_sec) {
      ++counters_.echo_rate_limited;
      return;
    }
    ++ping_window_count_;
  }
  Packet reply;
  reply.ip.src = config_.address;
  reply.ip.dst = pkt.ip.src;
  reply.ip.protocol = IpProto::kIcmp;
  reply.ip.identification = ipid_->next(pkt.ip.src);
  reply.icmp = IcmpEcho{IcmpType::kEchoReply, pkt.icmp->identifier, pkt.icmp->sequence};
  // Echo semantics: the payload is reflected (into a recycled buffer).
  reply.payload = util::BufferPool::global().acquire(pkt.payload.size());
  reply.payload.assign(pkt.payload.begin(), pkt.payload.end());
  reply.uid = next_packet_uid();
  reply.first_sent = env_.now();
  ++counters_.echo_replies;
  ++counters_.packets_out;
  if (transmit_) transmit_(reply);
}

void Host::accept_connection(const Packet& pkt) {
  const ConnKey key{pkt.tcp.dst_port, pkt.ip.src, pkt.tcp.src_port};
  // Keep the ISS well below 2^31 so a connection's sequence space never
  // wraps mid-test (documented simulator simplification).
  const auto iss = static_cast<std::uint32_t>(rng_.below(1u << 30));
  auto ep = std::make_unique<TcpEndpoint>(
      env_, config_.behavior, key, iss,
      [this, key](TcpHeader h, std::vector<std::uint8_t> payload) {
        send_segment(key, h, std::move(payload));
      });
  attach_app(*ep, config_.listeners.at(pkt.tcp.dst_port));
  auto* raw = ep.get();
  endpoints_.emplace(key, std::move(ep));
  ++counters_.connections_accepted;
  raw->on_segment(pkt);
}

void Host::attach_app(TcpEndpoint& ep, const ListenerConfig& listener) {
  TcpEndpoint* self = &ep;
  const ConnKey key = ep.key();
  switch (listener.app) {
    case AppKind::kDiscard:
      // Consume silently; close our side when the peer closes.
      self->on_remote_close = [self] { self->close(); };
      break;
    case AppKind::kEcho:
      self->on_data = [self](std::span<const std::uint8_t> data) { self->send_data(data); };
      self->on_remote_close = [self] { self->close(); };
      break;
    case AppKind::kObjectServer: {
      // Serve the object once the first request bytes arrive, then close —
      // the same shape as an HTTP GET of a root object.
      const std::size_t size = listener.object_size;
      auto served = std::make_shared<bool>(false);
      self->on_data = [self, size, served](std::span<const std::uint8_t>) {
        if (*served) return;
        *served = true;
        self->send_data(make_object(size));
        self->close();
      };
      self->on_remote_close = [self, served] {
        if (!*served) self->close();
      };
      break;
    }
  }
  self->on_closed = [this, key] { schedule_reap(key); };
}

void Host::schedule_reap(const ConnKey& key) {
  // Destroying the endpoint inside one of its own callbacks would be a
  // use-after-free; defer to the next event-loop turn.
  env_.schedule(util::Duration::nanos(0), [this, key] { endpoints_.erase(key); });
}

void Host::send_segment(const ConnKey& key, TcpHeader header, std::vector<std::uint8_t> payload) {
  Packet pkt;
  pkt.ip.src = config_.address;
  pkt.ip.dst = key.remote_addr;
  pkt.ip.protocol = IpProto::kTcp;
  pkt.ip.identification = ipid_->next(key.remote_addr);
  pkt.ip.dont_fragment = config_.ipid_policy == IpidPolicy::kConstantZero;
  pkt.tcp = header;
  pkt.payload = std::move(payload);
  pkt.uid = next_packet_uid();
  pkt.first_sent = env_.now();
  ++counters_.packets_out;
  if (transmit_) transmit_(std::move(pkt));
}

void Host::send_rst_for(const Packet& pkt) {
  // RFC 793 reset generation for a non-existent connection.
  Packet rst;
  rst.ip.src = config_.address;
  rst.ip.dst = pkt.ip.src;
  rst.ip.protocol = IpProto::kTcp;
  rst.ip.identification = ipid_->next(pkt.ip.src);
  rst.tcp.src_port = pkt.tcp.dst_port;
  rst.tcp.dst_port = pkt.tcp.src_port;
  rst.tcp.window = 0;
  if (pkt.tcp.is_ack()) {
    rst.tcp.flags = kRst;
    rst.tcp.seq = pkt.tcp.ack;
  } else {
    rst.tcp.flags = kRst | kAck;
    rst.tcp.seq = 0;
    rst.tcp.ack = pkt.tcp.seq + pkt.seq_len();
  }
  rst.uid = next_packet_uid();
  rst.first_sent = env_.now();
  ++counters_.packets_out;
  if (transmit_) transmit_(std::move(rst));
}

}  // namespace reorder::tcpip
