// Structured TCP header (RFC 793) with MSS option support and a wire codec
// including the IPv4 pseudo-header checksum.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "tcpip/ipv4.hpp"
#include "util/byte_io.hpp"

namespace reorder::tcpip {

/// TCP flag bits, combinable with operator|.
enum TcpFlags : std::uint8_t {
  kFin = 0x01,
  kSyn = 0x02,
  kRst = 0x04,
  kPsh = 0x08,
  kAck = 0x10,
  kUrg = 0x20,
};

/// Structured TCP header. data_offset and checksum are computed by the
/// codec. Only the MSS option is modeled (the only one the paper's
/// techniques rely on).
struct TcpHeader {
  std::uint16_t src_port{0};
  std::uint16_t dst_port{0};
  std::uint32_t seq{0};
  std::uint32_t ack{0};
  std::uint8_t flags{0};
  std::uint16_t window{65535};
  std::uint16_t urgent{0};
  std::optional<std::uint16_t> mss;  ///< MSS option (SYN segments only)

  bool has(TcpFlags f) const { return (flags & f) != 0; }
  bool is_syn() const { return has(kSyn); }
  bool is_ack() const { return has(kAck); }
  bool is_rst() const { return has(kRst); }
  bool is_fin() const { return has(kFin); }

  /// Header length on the wire (20 bytes + padded options).
  std::size_t wire_size() const { return mss.has_value() ? 24u : 20u; }

  /// Serializes header + payload with a valid checksum computed over the
  /// pseudo-header for (src, dst).
  void serialize(util::ByteWriter& w, Ipv4Address src, Ipv4Address dst,
                 std::span<const std::uint8_t> payload) const;

  struct Parsed;
  /// Parses a TCP segment (header + options); `segment` must span the whole
  /// TCP portion of the datagram so the checksum can be verified.
  static Parsed parse(std::span<const std::uint8_t> segment, Ipv4Address src, Ipv4Address dst);

  /// "SYN|ACK seq=12 ack=13 win=65535" — for logs and test failure messages.
  std::string describe() const;
};

struct TcpHeader::Parsed {
  TcpHeader header;
  std::size_t header_len{0};
  bool checksum_ok{false};
};

}  // namespace reorder::tcpip
