// The value type that flows through the simulator: a TCP/IPv4 datagram with
// structured headers plus tracing metadata. Structured form keeps the hot
// path allocation-light; `to_wire` / `from_wire` give the exact byte-level
// representation when needed (pcap output, codec tests).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "tcpip/icmp.hpp"
#include "tcpip/ipv4.hpp"
#include "tcpip/tcp_header.hpp"
#include "util/time.hpp"

namespace reorder::tcpip {

/// One IPv4 packet in flight: TCP (the default) or ICMP echo when
/// ip.protocol == kIcmp and `icmp` is set.
struct Packet {
  Ipv4Header ip;
  TcpHeader tcp;
  std::optional<IcmpEcho> icmp;
  std::vector<std::uint8_t> payload;

  bool is_icmp() const { return ip.protocol == IpProto::kIcmp && icmp.has_value(); }

  // --- tracing metadata (not on the wire) ---
  std::uint64_t uid{0};                ///< unique per-packet id for ground truth
  util::TimePoint first_sent;          ///< stamped when first transmitted

  /// Bytes this packet occupies on the wire (IP header + L4 + payload).
  std::size_t wire_size() const {
    const std::size_t l4 = is_icmp() ? IcmpEcho::kWireSize : tcp.wire_size();
    return Ipv4Header::kWireSize + l4 + payload.size();
  }

  std::size_t payload_size() const { return payload.size(); }

  /// The sequence range [seq, seq + len) this segment occupies, where SYN
  /// and FIN each consume one sequence number.
  std::uint32_t seq_len() const {
    std::uint32_t len = static_cast<std::uint32_t>(payload.size());
    if (tcp.has(kSyn)) ++len;
    if (tcp.has(kFin)) ++len;
    return len;
  }

  /// Serializes to standards-conformant wire bytes (checksums valid).
  /// The returned buffer comes from util::BufferPool::global(); callers on
  /// a hot path should hand it back with util::BufferPool::release (or use
  /// to_wire_into with a reused scratch buffer).
  std::vector<std::uint8_t> to_wire() const;

  /// Serializes into `out` (cleared first, capacity reused) — the
  /// allocation-free form for per-packet call sites.
  void to_wire_into(std::vector<std::uint8_t>& out) const;

  struct FromWire;
  /// Parses wire bytes back into a structured packet. Throws
  /// util::ParseError on malformed input; sets `checksums_ok` accordingly.
  static FromWire from_wire(std::span<const std::uint8_t> bytes);

  /// One-line rendering for logs: "10.0.0.1:5000 > 10.0.0.2:80 SYN seq=..".
  std::string describe() const;
};

struct Packet::FromWire {
  Packet packet;
  bool checksums_ok{false};
};

/// Allocates process-unique packet uids. Single-threaded simulators call
/// this from one thread; ids only feed tracing, never behaviour.
std::uint64_t next_packet_uid();

/// Returns a dead packet's payload buffer to util::BufferPool::global().
/// Terminal sinks (host ingress, probe delivery) call this so the payload
/// capacity cycles back to the senders instead of hitting the allocator.
void recycle(Packet&& pkt);

}  // namespace reorder::tcpip
