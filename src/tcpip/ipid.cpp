#include "tcpip/ipid.hpp"

namespace reorder::tcpip {

std::string to_string(IpidPolicy policy) {
  switch (policy) {
    case IpidPolicy::kGlobalCounter: return "global-counter";
    case IpidPolicy::kPerDestination: return "per-destination";
    case IpidPolicy::kRandom: return "random";
    case IpidPolicy::kConstantZero: return "constant-zero";
    case IpidPolicy::kRandomIncrement: return "random-increment";
  }
  return "?";
}

namespace {

class GlobalCounter final : public IpidGenerator {
 public:
  explicit GlobalCounter(std::uint16_t initial) : counter_{initial} {}
  std::uint16_t next(Ipv4Address) override { return counter_++; }
  IpidPolicy policy() const override { return IpidPolicy::kGlobalCounter; }

 private:
  std::uint16_t counter_;
};

class PerDestination final : public IpidGenerator {
 public:
  explicit PerDestination(std::uint16_t initial) : initial_{initial} {}
  std::uint16_t next(Ipv4Address dst) override {
    auto [it, inserted] = counters_.try_emplace(dst.value(), initial_);
    return it->second++;
  }
  IpidPolicy policy() const override { return IpidPolicy::kPerDestination; }

 private:
  std::uint16_t initial_;
  std::map<std::uint32_t, std::uint16_t> counters_;
};

class RandomIpid final : public IpidGenerator {
 public:
  explicit RandomIpid(std::uint64_t seed) : rng_{seed} {}
  std::uint16_t next(Ipv4Address) override {
    return static_cast<std::uint16_t>(rng_.below(65536));
  }
  IpidPolicy policy() const override { return IpidPolicy::kRandom; }

 private:
  util::Rng rng_;
};

class ConstantZero final : public IpidGenerator {
 public:
  std::uint16_t next(Ipv4Address) override { return 0; }
  IpidPolicy policy() const override { return IpidPolicy::kConstantZero; }
};

class RandomIncrement final : public IpidGenerator {
 public:
  RandomIncrement(std::uint64_t seed, std::uint16_t initial) : rng_{seed}, counter_{initial} {}
  std::uint16_t next(Ipv4Address) override {
    counter_ = static_cast<std::uint16_t>(counter_ +
                                          static_cast<std::uint16_t>(rng_.between(1, 7)));
    return counter_;
  }
  IpidPolicy policy() const override { return IpidPolicy::kRandomIncrement; }

 private:
  util::Rng rng_;
  std::uint16_t counter_;
};

}  // namespace

std::unique_ptr<IpidGenerator> make_ipid_generator(IpidPolicy policy, std::uint64_t seed,
                                                   std::uint16_t initial) {
  switch (policy) {
    case IpidPolicy::kGlobalCounter: return std::make_unique<GlobalCounter>(initial);
    case IpidPolicy::kPerDestination: return std::make_unique<PerDestination>(initial);
    case IpidPolicy::kRandom: return std::make_unique<RandomIpid>(seed);
    case IpidPolicy::kConstantZero: return std::make_unique<ConstantZero>();
    case IpidPolicy::kRandomIncrement: return std::make_unique<RandomIncrement>(seed, initial);
  }
  return nullptr;
}

}  // namespace reorder::tcpip
