// Minimal ICMP echo support (RFC 792 types 8/0).
//
// Needed to reproduce the measurement baseline the paper critiques in
// §II: Bennett et al. estimated reordering by sending bursts of ICMP echo
// requests and inspecting reply order — a technique that cannot attribute
// reordering to the forward or reverse path and that operators
// increasingly filter. The ping-burst baseline in core/ is built on this.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/byte_io.hpp"

namespace reorder::tcpip {

enum class IcmpType : std::uint8_t {
  kEchoReply = 0,
  kEchoRequest = 8,
};

/// An ICMP echo request/reply header (the 8-byte echo form).
struct IcmpEcho {
  IcmpType type{IcmpType::kEchoRequest};
  std::uint16_t identifier{0};
  std::uint16_t sequence{0};

  static constexpr std::size_t kWireSize = 8;

  /// Serializes header + payload with a valid ICMP checksum.
  void serialize(util::ByteWriter& w, std::span<const std::uint8_t> payload) const;

  struct Parsed;
  /// Parses an ICMP message (must span the whole ICMP portion).
  static Parsed parse(std::span<const std::uint8_t> message);
};

struct IcmpEcho::Parsed {
  IcmpEcho header;
  bool checksum_ok{false};
  std::size_t header_len{0};
};

}  // namespace reorder::tcpip
