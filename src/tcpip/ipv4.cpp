#include "tcpip/ipv4.hpp"

#include <cstdio>
#include <stdexcept>

#include "util/checksum.hpp"

namespace reorder::tcpip {

Ipv4Address Ipv4Address::parse(const std::string& dotted) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  char tail = 0;
  const int got = std::sscanf(dotted.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail);
  if (got != 4 || a > 255 || b > 255 || c > 255 || d > 255) {
    throw std::invalid_argument{"bad IPv4 address: " + dotted};
  }
  return from_octets(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
                     static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (value_ >> 24) & 0xff, (value_ >> 16) & 0xff,
                (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

void Ipv4Header::serialize(util::ByteWriter& w, std::size_t payload_len) const {
  const std::size_t start = w.size();
  const auto total = static_cast<std::uint16_t>(kWireSize + payload_len);
  w.u8(0x45);  // version 4, IHL 5 words
  w.u8(tos);
  w.u16(total);
  w.u16(identification);
  std::uint16_t frag = fragment_offset & 0x1fff;
  if (dont_fragment) frag |= 0x4000;
  if (more_fragments) frag |= 0x2000;
  w.u16(frag);
  w.u8(ttl);
  w.u8(static_cast<std::uint8_t>(protocol));
  const std::size_t checksum_at = w.size();
  w.u16(0);  // checksum placeholder
  w.u32(src.value());
  w.u32(dst.value());
  // Checksum over the header bytes just written.
  // ByteWriter does not expose its buffer, so recompute from the fields.
  std::vector<std::uint8_t> hdr;
  util::ByteWriter hw{hdr};
  hw.u8(0x45);
  hw.u8(tos);
  hw.u16(total);
  hw.u16(identification);
  hw.u16(frag);
  hw.u8(ttl);
  hw.u8(static_cast<std::uint8_t>(protocol));
  hw.u16(0);
  hw.u32(src.value());
  hw.u32(dst.value());
  const std::uint16_t sum = util::internet_checksum(hdr);
  w.patch_u16(checksum_at, sum);
  (void)start;
}

Ipv4Header::Parsed Ipv4Header::parse(util::ByteReader& r) {
  const auto header_bytes = r.bytes(kWireSize);
  util::ByteReader hr{header_bytes};
  Parsed out;
  const std::uint8_t ver_ihl = hr.u8();
  if ((ver_ihl >> 4) != 4) throw util::ParseError{"not IPv4"};
  const std::size_t ihl = static_cast<std::size_t>(ver_ihl & 0x0f) * 4;
  if (ihl != kWireSize) throw util::ParseError{"IPv4 options unsupported"};
  out.header.tos = hr.u8();
  out.total_length = hr.u16();
  out.header.identification = hr.u16();
  const std::uint16_t frag = hr.u16();
  out.header.dont_fragment = (frag & 0x4000) != 0;
  out.header.more_fragments = (frag & 0x2000) != 0;
  out.header.fragment_offset = frag & 0x1fff;
  out.header.ttl = hr.u8();
  out.header.protocol = static_cast<IpProto>(hr.u8());
  hr.u16();  // checksum (validated over the whole header below)
  out.header.src = Ipv4Address{hr.u32()};
  out.header.dst = Ipv4Address{hr.u32()};
  out.checksum_ok = util::internet_checksum(header_bytes) == 0;
  return out;
}

}  // namespace reorder::tcpip
