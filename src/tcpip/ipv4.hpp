// IPv4 addressing and header representation with a real wire codec
// (RFC 791). The simulator passes structured headers for speed, but every
// header can be serialized to standards-conformant bytes — the pcap writer
// and the codec tests use that path.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/byte_io.hpp"

namespace reorder::tcpip {

/// Strongly typed IPv4 address (host-order value internally).
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t v) : value_{v} {}
  static constexpr Ipv4Address from_octets(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                                           std::uint8_t d) {
    return Ipv4Address{(static_cast<std::uint32_t>(a) << 24) |
                       (static_cast<std::uint32_t>(b) << 16) |
                       (static_cast<std::uint32_t>(c) << 8) | d};
  }
  /// Parses dotted-quad notation; throws std::invalid_argument on bad input.
  static Ipv4Address parse(const std::string& dotted);

  constexpr std::uint32_t value() const { return value_; }
  std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

 private:
  std::uint32_t value_{0};
};

/// IP protocol numbers we care about.
enum class IpProto : std::uint8_t { kIcmp = 1, kTcp = 6, kUdp = 17 };

/// Structured IPv4 header (no options). total_length and header checksum
/// are computed during serialization; parse() verifies the checksum.
struct Ipv4Header {
  std::uint8_t tos{0};
  std::uint16_t identification{0};
  bool dont_fragment{false};
  bool more_fragments{false};
  std::uint16_t fragment_offset{0};  ///< in 8-byte units
  std::uint8_t ttl{64};
  IpProto protocol{IpProto::kTcp};
  Ipv4Address src;
  Ipv4Address dst;

  static constexpr std::size_t kWireSize = 20;

  /// Appends the 20-byte header (checksum filled in) for a datagram whose
  /// payload (everything after this header) is `payload_len` bytes.
  void serialize(util::ByteWriter& w, std::size_t payload_len) const;

  struct Parsed;
  /// Parses the 20-byte header; the result carries the fields plus the
  /// total length from the wire and the checksum verdict.
  static Parsed parse(util::ByteReader& r);
};

struct Ipv4Header::Parsed {
  Ipv4Header header;
  std::uint16_t total_length{0};
  bool checksum_ok{false};
};

}  // namespace reorder::tcpip
