// A simulated TCP/IP host: one IPv4 address, an IPID generator, a demux
// from four-tuples to TcpEndpoints, listening ports with small server
// applications, and RSTs for closed ports. This is the "arbitrary TCP-based
// server" the paper turns into a de-facto measurement server.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "tcpip/env.hpp"
#include "tcpip/ipid.hpp"
#include "tcpip/packet.hpp"
#include "tcpip/tcp_endpoint.hpp"
#include "util/random.hpp"

namespace reorder::tcpip {

/// What a listening port does with an accepted connection.
enum class AppKind {
  kDiscard,       ///< accepts and consumes data, never sends (TCP port 9)
  kEcho,          ///< reflects received bytes (TCP port 7)
  kObjectServer,  ///< serves a fixed-size object after the first request
                  ///< byte arrives, then closes — an HTTP-GET stand-in
};

/// Listener configuration for one port.
struct ListenerConfig {
  AppKind app{AppKind::kDiscard};
  std::size_t object_size{16 * 1024};  ///< object server only
};

/// Host-wide configuration.
struct HostConfig {
  Ipv4Address address;
  std::string name{"host"};
  TcpBehavior behavior{};
  IpidPolicy ipid_policy{IpidPolicy::kGlobalCounter};
  std::uint16_t ipid_initial{1};
  std::uint64_t seed{1};
  std::map<std::uint16_t, ListenerConfig> listeners;
  bool rst_closed_ports{true};
  /// Answer ICMP echo requests. Operators increasingly disable or limit
  /// this (one of the paper's arguments against ping-based measurement).
  bool respond_to_ping{true};
  /// Maximum echo replies per second (0 = unlimited). Token-bucket with a
  /// one-second window, the common router implementation.
  std::uint32_t ping_rate_limit_per_sec{0};
  /// Probability a connection-opening SYN is silently dropped (a flaky
  /// host: SYN-rate-limiting firewall, overflowing accept queue). Each
  /// SYN rolls independently on the host RNG — deterministic in the
  /// seed — so a retransmitted SYN may get through where the first did
  /// not, exactly the retry behaviour probes see from such hosts.
  double syn_drop_probability{0.0};
};

/// Aggregate host counters for tests and experiment sanity checks.
struct HostCounters {
  std::uint64_t packets_in{0};
  std::uint64_t packets_out{0};
  std::uint64_t rst_closed_port{0};
  std::uint64_t connections_accepted{0};
  std::uint64_t echo_replies{0};
  std::uint64_t echo_rate_limited{0};
  std::uint64_t syn_dropped{0};
};

class Host {
 public:
  Host(Environment& env, HostConfig config);

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  /// Wires the host's egress; packets the host sends flow through here.
  void set_transmit(std::function<void(Packet)> transmit) { transmit_ = std::move(transmit); }

  /// Network ingress: deliver one packet to this host.
  void receive(const Packet& pkt);

  Ipv4Address address() const { return config_.address; }
  const HostConfig& config() const { return config_; }
  const HostCounters& counters() const { return counters_; }

  /// The live endpoint for a four-tuple, or nullptr.
  TcpEndpoint* find_endpoint(const ConnKey& key);
  std::size_t active_connections() const { return endpoints_.size(); }

 private:
  void handle_icmp(const Packet& pkt);
  void accept_connection(const Packet& pkt);
  void attach_app(TcpEndpoint& ep, const ListenerConfig& listener);
  void send_segment(const ConnKey& key, TcpHeader header, std::vector<std::uint8_t> payload);
  void send_rst_for(const Packet& pkt);
  void schedule_reap(const ConnKey& key);

  Environment& env_;
  HostConfig config_;
  std::function<void(Packet)> transmit_;
  std::unique_ptr<IpidGenerator> ipid_;
  util::Rng rng_;
  std::map<ConnKey, std::unique_ptr<TcpEndpoint>> endpoints_;
  HostCounters counters_;
  // Echo-reply token bucket state (window start + replies within it).
  util::TimePoint ping_window_start_;
  std::uint32_t ping_window_count_{0};
};

/// Deterministic payload for served objects: byte i of the object is
/// (i * 31 + 7) mod 256. Exposed so tests can verify transfers end-to-end.
std::uint8_t object_byte(std::size_t index);
std::vector<std::uint8_t> make_object(std::size_t size);

}  // namespace reorder::tcpip
