// IPv4 fragmentation and reassembly over wire-format datagrams.
//
// This is the mechanism that gives the IP identification field its
// meaning (paper §III-A): all fragments of a datagram carry the sender's
// IPID and the receiver reassembles by (src, dst, protocol, IPID). The
// dual-connection test's whole premise — that IPIDs from a classic stack
// order its transmissions — is an artifact of how senders keep this field
// unique, so the library implements the real thing.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace reorder::tcpip {

/// Splits a wire-format IPv4 datagram into fragments that each fit `mtu`
/// bytes (including the 20-byte IP header). Fragment payload sizes are
/// multiples of 8 except for the last fragment; headers carry the original
/// identification with MF set on all but the final fragment.
///
/// Returns a single-element copy when the datagram already fits. Returns
/// an empty vector when the datagram needs fragmenting but has DF set
/// (the sender would receive ICMP "fragmentation needed" — the Linux 2.4
/// PMTUD behaviour that also zeroes the IPID).
std::vector<std::vector<std::uint8_t>> fragment_datagram(
    std::span<const std::uint8_t> datagram, std::size_t mtu);

/// Reassembles fragments of one datagram (any arrival order, duplicates
/// tolerated). Returns the original datagram, or std::nullopt if pieces
/// are missing, overlap inconsistently, or mix identifications.
std::optional<std::vector<std::uint8_t>> reassemble_datagram(
    const std::vector<std::vector<std::uint8_t>>& fragments);

}  // namespace reorder::tcpip
