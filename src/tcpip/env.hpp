// The minimal clock/scheduler interface a protocol stack needs. The
// discrete-event loop in netsim implements it; keeping the interface here
// lets tcpip stay independent of the simulator (and unit-testable against a
// trivial manual clock).
#pragma once

#include <functional>

#include "util/time.hpp"

namespace reorder::tcpip {

/// Virtual time plus deferred execution. Implementations must run callbacks
/// in timestamp order; ties in FIFO order of scheduling.
class Environment {
 public:
  virtual ~Environment() = default;

  virtual util::TimePoint now() const = 0;

  /// Runs `fn` after `delay` (>= 0). Returns a token that can be cancelled.
  virtual std::uint64_t schedule(util::Duration delay, std::function<void()> fn) = 0;

  /// Cancels a previously scheduled callback; no-op if already run.
  virtual void cancel(std::uint64_t token) = 0;
};

}  // namespace reorder::tcpip
