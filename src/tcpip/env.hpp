// The minimal clock/scheduler interface a protocol stack needs. The
// discrete-event loop in netsim implements it; keeping the interface here
// lets tcpip stay independent of the simulator (and unit-testable against a
// trivial manual clock).
#pragma once

#include <cstdint>

#include "util/inplace_function.hpp"
#include "util/time.hpp"

namespace reorder::tcpip {

/// Capacity of a scheduled callback's inline capture buffer. Sized for the
/// largest hot-path capture: a netsim stage forwarding lambda carrying a
/// whole tcpip::Packet by value (headers + payload vector + metadata), with
/// headroom for the protocol timers (shared_from_this + completion function
/// + generation). Compile-time enforced — an oversized capture fails the
/// static_assert in InplaceFunction rather than silently allocating.
inline constexpr std::size_t kCallbackCapacity = 192;

/// Deferred-execution callback: move-only, never heap-allocates its capture.
using Callback = util::InplaceFunction<void(), kCallbackCapacity>;

/// Virtual time plus deferred execution. Implementations must run callbacks
/// in timestamp order; ties in FIFO order of scheduling.
class Environment {
 public:
  virtual ~Environment() = default;

  virtual util::TimePoint now() const = 0;

  /// Runs `fn` after `delay` (>= 0). Returns a token that can be cancelled.
  /// Tokens are never zero, so callers can use 0 as "no timer armed".
  virtual std::uint64_t schedule(util::Duration delay, Callback fn) = 0;

  /// Cancels a previously scheduled callback; no-op if already run.
  virtual void cancel(std::uint64_t token) = 0;
};

}  // namespace reorder::tcpip
