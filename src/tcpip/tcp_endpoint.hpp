// Server-side TCP state machine with the behavioural knobs the paper's
// measurement techniques depend on (and are confounded by):
//
//  * immediate duplicate ACK on out-of-order data (fast-retransmit support,
//    RFC 5681) — the signal every test exploits;
//  * the delayed acknowledgment algorithm, including whether an ACK for a
//    segment that fills a sequence hole is sent immediately or may be
//    delayed/coalesced — the ambiguity in the single-connection test;
//  * the response to a second SYN while in SYN_RCVD — spec-compliant
//    (RST if in-window, pure ACK otherwise), always-RST (most common),
//    dual-RST, or silence — the SYN test's dependency.
//
// The probe side does NOT use this class; it crafts raw segments through
// probe::Prober, exactly as sting does with BPF.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "tcpip/env.hpp"
#include "tcpip/packet.hpp"
#include "tcpip/seq.hpp"

namespace reorder::tcpip {

enum class TcpState {
  kListen,
  kSynRcvd,
  kEstablished,
  kCloseWait,
  kLastAck,
  kFinWait1,
  kFinWait2,
  kClosing,
  kClosed,
};

std::string to_string(TcpState s);

/// How a host reacts to a second SYN while in SYN_RCVD (paper §III-D).
enum class SecondSynBehavior {
  kSpecCompliant,  ///< RST if the SYN seq is in-window, else a pure ACK
  kAlwaysRst,      ///< most common implementation: RST regardless
  kDualRst,        ///< a small number of hosts emit two RSTs
  kIgnore,         ///< only respond to the first SYN
};

std::string to_string(SecondSynBehavior b);

/// Delayed acknowledgment scheme.
enum class DelayedAckPolicy {
  kNone,      ///< acknowledge every in-order segment immediately
  kStandard,  ///< delay up to a timeout or every 2nd segment (RFC 1122)
};

/// Implementation-variant knobs for a simulated stack.
struct TcpBehavior {
  DelayedAckPolicy delayed_ack{DelayedAckPolicy::kStandard};
  util::Duration delayed_ack_timeout{util::Duration::millis(200)};
  int ack_every{2};  ///< force an ACK after this many unacked in-order segments
  /// RFC 5681 says an ACK SHOULD be sent immediately when a segment fills a
  /// hole; stacks that treat it as ordinary in-order data (false) produce
  /// the single-connection test's lone-ACK ambiguity.
  bool immediate_ack_on_hole_fill{false};
  SecondSynBehavior second_syn{SecondSynBehavior::kAlwaysRst};
  util::Duration initial_rto{util::Duration::millis(250)};
  int max_retransmits{8};
  std::uint16_t default_mss{1460};   ///< assumed peer MSS when none offered
  std::uint16_t mss_to_advertise{1460};
  std::uint32_t receive_window{65535};
};

/// Identifies a connection from the host's point of view.
struct ConnKey {
  std::uint16_t local_port{0};
  Ipv4Address remote_addr;
  std::uint16_t remote_port{0};
  friend auto operator<=>(const ConnKey&, const ConnKey&) = default;
};

/// Event counters exposed for tests and experiment sanity checks.
struct EndpointCounters {
  std::uint64_t segments_in{0};
  std::uint64_t acks_sent{0};
  std::uint64_t dup_acks_sent{0};
  std::uint64_t delayed_acks_sent{0};
  std::uint64_t ooo_segments_queued{0};
  std::uint64_t hole_fills{0};
  std::uint64_t retransmissions{0};
  std::uint64_t rsts_sent{0};
  std::uint64_t second_syns_seen{0};
};

/// One TCP connection on a simulated host.
class TcpEndpoint {
 public:
  /// Sends a finished TCP header + payload; the host wraps it in IP.
  using SegmentSender = std::function<void(TcpHeader, std::vector<std::uint8_t>)>;

  TcpEndpoint(Environment& env, TcpBehavior behavior, ConnKey key, std::uint32_t iss,
              SegmentSender sender);
  ~TcpEndpoint();

  TcpEndpoint(const TcpEndpoint&) = delete;
  TcpEndpoint& operator=(const TcpEndpoint&) = delete;

  // --- application interface ---
  /// Called when the three-way handshake completes.
  std::function<void()> on_established;
  /// Called with each chunk of in-order application data.
  std::function<void(std::span<const std::uint8_t>)> on_data;
  /// Called when the peer's FIN has been consumed.
  std::function<void()> on_remote_close;
  /// Called when the connection reaches CLOSED (normally or via RST).
  std::function<void()> on_closed;

  /// Queues application data for transmission (segmented by peer MSS and
  /// bounded by the peer's advertised window).
  void send_data(std::span<const std::uint8_t> data);

  /// Graceful close: FIN is emitted once the send buffer drains.
  void close();

  /// Abortive close: emits RST and drops all state.
  void abort();

  /// Feeds one received segment into the state machine.
  void on_segment(const Packet& pkt);

  // --- introspection ---
  TcpState state() const { return state_; }
  const ConnKey& key() const { return key_; }
  std::uint32_t rcv_nxt() const { return rcv_nxt_; }
  std::uint32_t snd_nxt() const { return snd_nxt_; }
  const EndpointCounters& counters() const { return counters_; }
  bool fin_received() const { return fin_received_; }

 private:
  void handle_listen(const Packet& pkt);
  void handle_syn_rcvd(const Packet& pkt);
  void handle_synchronized(const Packet& pkt);
  void process_ack(const Packet& pkt);
  void process_payload(const Packet& pkt);
  void process_fin(const Packet& pkt);

  void deliver(std::span<const std::uint8_t> data);
  void drain_reassembly();

  void send_flags(std::uint8_t flags);
  void send_ack_now(bool duplicate);
  void send_rst();
  void schedule_delayed_ack();
  void cancel_delayed_ack();
  void delayed_ack_fire(std::uint64_t generation);

  void try_send();
  void arm_rto();
  void cancel_rto();
  void rto_fire(std::uint64_t generation);
  void retransmit_one();

  void enter_closed();

  Environment& env_;
  TcpBehavior behavior_;
  ConnKey key_;
  SegmentSender sender_;

  TcpState state_{TcpState::kListen};
  EndpointCounters counters_;

  // Receive side.
  std::uint32_t irs_{0};
  std::uint32_t rcv_nxt_{0};
  std::map<std::uint32_t, std::vector<std::uint8_t>> reassembly_;  // seq -> bytes
  bool fin_received_{false};

  // Send side.
  std::uint32_t iss_{0};
  std::uint32_t snd_una_{0};
  std::uint32_t snd_nxt_{0};
  std::uint32_t snd_wnd_{0};
  std::uint16_t peer_mss_{0};
  std::vector<std::uint8_t> send_buf_;  // bytes [snd_una_offset.., ...]
  std::uint32_t send_buf_base_{0};      // seq of send_buf_[0]
  bool fin_pending_{false};
  bool fin_sent_{false};

  // Delayed ACK machinery.
  int unacked_in_order_{0};
  bool ack_pending_{false};
  std::uint64_t delack_token_{0};
  std::uint64_t delack_generation_{0};

  // Retransmission.
  std::uint64_t rto_token_{0};
  std::uint64_t rto_generation_{0};
  util::Duration current_rto_{};
  int retransmit_count_{0};
};

}  // namespace reorder::tcpip
