// IP identification (IPID) generation policies.
//
// The dual-connection test depends on the classic "single global counter"
// implementation artifact: two packets from the same host can be ordered by
// comparing their IPIDs. Real stacks diverge from this (the paper names
// Linux 2.4's constant zero under PMTU discovery, OpenBSD's pseudorandom
// ids, Solaris' per-destination counters), so each behaviour is a policy
// here and the IpidValidator in core/ must tell them apart.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "tcpip/ipv4.hpp"
#include "util/random.hpp"

namespace reorder::tcpip {

/// Which IPID scheme a host uses.
enum class IpidPolicy {
  kGlobalCounter,    ///< classic: one counter, +1 per transmitted packet
  kPerDestination,   ///< Solaris-style: independent counter per peer
  kRandom,           ///< OpenBSD-style: pseudorandom per packet
  kConstantZero,     ///< Linux 2.4 with PMTUD: always 0, DF set
  kRandomIncrement,  ///< counter advanced by a small random step
};

std::string to_string(IpidPolicy policy);

/// Stateful IPID source. One instance per host.
class IpidGenerator {
 public:
  virtual ~IpidGenerator() = default;
  /// Returns the identification value for the next packet to `dst`.
  virtual std::uint16_t next(Ipv4Address dst) = 0;
  virtual IpidPolicy policy() const = 0;
};

/// Factory. `seed` feeds the stochastic policies; `initial` is the first
/// counter value for counter-based policies (mod 65536).
std::unique_ptr<IpidGenerator> make_ipid_generator(IpidPolicy policy, std::uint64_t seed = 1,
                                                   std::uint16_t initial = 1);

}  // namespace reorder::tcpip
