#include "tcpip/tcp_header.hpp"

#include <array>
#include <cstdio>

#include "util/checksum.hpp"

namespace reorder::tcpip {

namespace {

void append_pseudo_header(util::InternetChecksum& c, Ipv4Address src, Ipv4Address dst,
                          std::size_t tcp_len) {
  std::array<std::uint8_t, 12> ph{};
  const std::uint32_t s = src.value();
  const std::uint32_t d = dst.value();
  ph[0] = static_cast<std::uint8_t>(s >> 24);
  ph[1] = static_cast<std::uint8_t>(s >> 16);
  ph[2] = static_cast<std::uint8_t>(s >> 8);
  ph[3] = static_cast<std::uint8_t>(s);
  ph[4] = static_cast<std::uint8_t>(d >> 24);
  ph[5] = static_cast<std::uint8_t>(d >> 16);
  ph[6] = static_cast<std::uint8_t>(d >> 8);
  ph[7] = static_cast<std::uint8_t>(d);
  ph[8] = 0;
  ph[9] = static_cast<std::uint8_t>(IpProto::kTcp);
  ph[10] = static_cast<std::uint8_t>(tcp_len >> 8);
  ph[11] = static_cast<std::uint8_t>(tcp_len & 0xff);
  c.update(ph);
}

void write_header_bytes(util::ByteWriter& w, const TcpHeader& h, std::uint16_t checksum) {
  w.u16(h.src_port);
  w.u16(h.dst_port);
  w.u32(h.seq);
  w.u32(h.ack);
  const auto offset_words = static_cast<std::uint8_t>(h.wire_size() / 4);
  w.u8(static_cast<std::uint8_t>(offset_words << 4));
  w.u8(h.flags);
  w.u16(h.window);
  w.u16(checksum);
  w.u16(h.urgent);
  if (h.mss.has_value()) {
    w.u8(2);  // kind: MSS
    w.u8(4);  // length
    w.u16(*h.mss);
  }
}

}  // namespace

void TcpHeader::serialize(util::ByteWriter& w, Ipv4Address src, Ipv4Address dst,
                          std::span<const std::uint8_t> payload) const {
  // First render with zero checksum into a scratch buffer, checksum it with
  // the pseudo-header, then emit the final bytes.
  std::vector<std::uint8_t> scratch;
  util::ByteWriter sw{scratch};
  write_header_bytes(sw, *this, 0);
  const std::size_t tcp_len = scratch.size() + payload.size();

  util::InternetChecksum c;
  append_pseudo_header(c, src, dst, tcp_len);
  c.update(scratch);
  c.update(payload);
  const std::uint16_t sum = c.finish();

  write_header_bytes(w, *this, sum);
  w.bytes(payload);
}

TcpHeader::Parsed TcpHeader::parse(std::span<const std::uint8_t> segment, Ipv4Address src,
                                   Ipv4Address dst) {
  util::ByteReader r{segment};
  Parsed out;
  out.header.src_port = r.u16();
  out.header.dst_port = r.u16();
  out.header.seq = r.u32();
  out.header.ack = r.u32();
  const std::uint8_t off = r.u8();
  out.header_len = static_cast<std::size_t>(off >> 4) * 4;
  if (out.header_len < 20 || out.header_len > segment.size()) {
    throw util::ParseError{"bad TCP data offset"};
  }
  out.header.flags = r.u8();
  out.header.window = r.u16();
  r.u16();  // checksum, verified over the whole segment below
  out.header.urgent = r.u16();
  // Options.
  while (r.position() < out.header_len) {
    const std::uint8_t kind = r.u8();
    if (kind == 0) break;    // end of options
    if (kind == 1) continue; // NOP
    const std::uint8_t len = r.u8();
    if (len < 2) throw util::ParseError{"bad TCP option length"};
    if (kind == 2 && len == 4) {
      out.header.mss = r.u16();
    } else {
      r.skip(len - 2);
    }
  }

  util::InternetChecksum c;
  append_pseudo_header(c, src, dst, segment.size());
  c.update(segment);
  out.checksum_ok = c.finish() == 0;
  return out;
}

std::string TcpHeader::describe() const {
  std::string f;
  if (has(kSyn)) f += "SYN|";
  if (has(kFin)) f += "FIN|";
  if (has(kRst)) f += "RST|";
  if (has(kPsh)) f += "PSH|";
  if (has(kAck)) f += "ACK|";
  if (has(kUrg)) f += "URG|";
  if (!f.empty()) f.pop_back();
  char buf[128];
  std::snprintf(buf, sizeof buf, "%s seq=%u ack=%u win=%u", f.empty() ? "-" : f.c_str(), seq, ack,
                window);
  return buf;
}

}  // namespace reorder::tcpip
