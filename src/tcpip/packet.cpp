#include "tcpip/packet.hpp"

#include <cstdio>

#include "util/buffer_pool.hpp"

namespace reorder::tcpip {

std::vector<std::uint8_t> Packet::to_wire() const {
  std::vector<std::uint8_t> out = util::BufferPool::global().acquire(wire_size());
  to_wire_into(out);
  return out;
}

void Packet::to_wire_into(std::vector<std::uint8_t>& out) const {
  out.clear();
  out.reserve(wire_size());
  util::ByteWriter w{out};
  if (is_icmp()) {
    ip.serialize(w, IcmpEcho::kWireSize + payload.size());
    icmp->serialize(w, payload);
  } else {
    ip.serialize(w, tcp.wire_size() + payload.size());
    tcp.serialize(w, ip.src, ip.dst, payload);
  }
}

Packet::FromWire Packet::from_wire(std::span<const std::uint8_t> bytes) {
  util::ByteReader r{bytes};
  const auto ipp = Ipv4Header::parse(r);
  if (ipp.total_length != bytes.size()) throw util::ParseError{"IP total length mismatch"};
  const auto segment = r.bytes(r.remaining());

  FromWire out;
  out.packet.ip = ipp.header;
  if (ipp.header.protocol == IpProto::kIcmp) {
    const auto icmpp = IcmpEcho::parse(segment);
    out.packet.icmp = icmpp.header;
    out.packet.payload = util::BufferPool::global().acquire(segment.size());
    out.packet.payload.assign(segment.begin() + static_cast<std::ptrdiff_t>(icmpp.header_len),
                              segment.end());
    out.checksums_ok = ipp.checksum_ok && icmpp.checksum_ok;
    return out;
  }
  const auto tcpp = TcpHeader::parse(segment, ipp.header.src, ipp.header.dst);
  out.packet.tcp = tcpp.header;
  out.packet.payload = util::BufferPool::global().acquire(segment.size());
  out.packet.payload.assign(segment.begin() + static_cast<std::ptrdiff_t>(tcpp.header_len),
                            segment.end());
  out.checksums_ok = ipp.checksum_ok && tcpp.checksum_ok;
  return out;
}

void recycle(Packet&& pkt) { util::BufferPool::global().release(std::move(pkt.payload)); }

std::string Packet::describe() const {
  char buf[192];
  if (is_icmp()) {
    std::snprintf(buf, sizeof buf, "%s > %s ICMP %s id=%u seq=%u len=%zu",
                  ip.src.to_string().c_str(), ip.dst.to_string().c_str(),
                  icmp->type == IcmpType::kEchoRequest ? "echo-request" : "echo-reply",
                  icmp->identifier, icmp->sequence, payload.size());
    return buf;
  }
  std::snprintf(buf, sizeof buf, "%s:%u > %s:%u %s len=%zu ipid=%u", ip.src.to_string().c_str(),
                tcp.src_port, ip.dst.to_string().c_str(), tcp.dst_port, tcp.describe().c_str(),
                payload.size(), ip.identification);
  return buf;
}

std::uint64_t next_packet_uid() {
  thread_local std::uint64_t counter = 0;
  return ++counter;
}

}  // namespace reorder::tcpip
