#include "tcpip/icmp.hpp"

#include "util/checksum.hpp"

namespace reorder::tcpip {

void IcmpEcho::serialize(util::ByteWriter& w, std::span<const std::uint8_t> payload) const {
  std::vector<std::uint8_t> scratch;
  util::ByteWriter sw{scratch};
  sw.u8(static_cast<std::uint8_t>(type));
  sw.u8(0);  // code
  sw.u16(0); // checksum placeholder
  sw.u16(identifier);
  sw.u16(sequence);
  util::InternetChecksum c;
  c.update(scratch);
  c.update(payload);
  const std::uint16_t sum = c.finish();
  sw.patch_u16(2, sum);
  w.bytes(scratch);
  w.bytes(payload);
}

IcmpEcho::Parsed IcmpEcho::parse(std::span<const std::uint8_t> message) {
  util::ByteReader r{message};
  Parsed out;
  out.header.type = static_cast<IcmpType>(r.u8());
  r.u8();   // code
  r.u16();  // checksum (verified over the whole message below)
  out.header.identifier = r.u16();
  out.header.sequence = r.u16();
  out.header_len = kWireSize;
  out.checksum_ok = util::internet_checksum(message) == 0;
  return out;
}

}  // namespace reorder::tcpip
