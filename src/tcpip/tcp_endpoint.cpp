#include "tcpip/tcp_endpoint.hpp"

#include <algorithm>

#include "util/buffer_pool.hpp"
#include "util/logging.hpp"

namespace reorder::tcpip {

std::string to_string(TcpState s) {
  switch (s) {
    case TcpState::kListen: return "LISTEN";
    case TcpState::kSynRcvd: return "SYN_RCVD";
    case TcpState::kEstablished: return "ESTABLISHED";
    case TcpState::kCloseWait: return "CLOSE_WAIT";
    case TcpState::kLastAck: return "LAST_ACK";
    case TcpState::kFinWait1: return "FIN_WAIT_1";
    case TcpState::kFinWait2: return "FIN_WAIT_2";
    case TcpState::kClosing: return "CLOSING";
    case TcpState::kClosed: return "CLOSED";
  }
  return "?";
}

std::string to_string(SecondSynBehavior b) {
  switch (b) {
    case SecondSynBehavior::kSpecCompliant: return "spec-compliant";
    case SecondSynBehavior::kAlwaysRst: return "always-rst";
    case SecondSynBehavior::kDualRst: return "dual-rst";
    case SecondSynBehavior::kIgnore: return "ignore";
  }
  return "?";
}

namespace {
std::uint16_t clamp_window(std::uint32_t w) {
  return static_cast<std::uint16_t>(std::min<std::uint32_t>(w, 65535));
}
}  // namespace

TcpEndpoint::TcpEndpoint(Environment& env, TcpBehavior behavior, ConnKey key, std::uint32_t iss,
                         SegmentSender sender)
    : env_{env},
      behavior_{behavior},
      key_{key},
      sender_{std::move(sender)},
      iss_{iss},
      snd_una_{iss},
      snd_nxt_{iss},
      peer_mss_{behavior.default_mss} {}

TcpEndpoint::~TcpEndpoint() {
  cancel_delayed_ack();
  cancel_rto();
  for (auto& [seq, buf] : reassembly_) util::BufferPool::global().release(std::move(buf));
}

void TcpEndpoint::on_segment(const Packet& pkt) {
  ++counters_.segments_in;
  switch (state_) {
    case TcpState::kListen:
      handle_listen(pkt);
      break;
    case TcpState::kSynRcvd:
      handle_syn_rcvd(pkt);
      break;
    case TcpState::kClosed:
      break;  // dead socket; host is responsible for RSTs to closed ports
    default:
      handle_synchronized(pkt);
      break;
  }
}

void TcpEndpoint::handle_listen(const Packet& pkt) {
  if (!pkt.tcp.is_syn() || pkt.tcp.is_ack() || pkt.tcp.is_rst()) return;
  irs_ = pkt.tcp.seq;
  rcv_nxt_ = pkt.tcp.seq + 1;
  peer_mss_ = pkt.tcp.mss.value_or(behavior_.default_mss);
  snd_wnd_ = pkt.tcp.window;
  state_ = TcpState::kSynRcvd;
  send_buf_base_ = iss_ + 1;

  TcpHeader h;
  h.src_port = key_.local_port;
  h.dst_port = key_.remote_port;
  h.flags = kSyn | kAck;
  h.seq = iss_;
  h.ack = rcv_nxt_;
  h.window = clamp_window(behavior_.receive_window);
  h.mss = behavior_.mss_to_advertise;
  snd_nxt_ = iss_ + 1;
  ++counters_.acks_sent;
  sender_(h, {});
  arm_rto();
}

void TcpEndpoint::handle_syn_rcvd(const Packet& pkt) {
  if (pkt.tcp.is_rst()) {
    enter_closed();
    return;
  }
  if (pkt.tcp.is_syn()) {
    // A second SYN on the same four-tuple: the SYN test's probe packet.
    ++counters_.second_syns_seen;
    switch (behavior_.second_syn) {
      case SecondSynBehavior::kSpecCompliant:
        if (seq_in_window(pkt.tcp.seq, rcv_nxt_, behavior_.receive_window)) {
          send_rst();
        } else {
          send_ack_now(/*duplicate=*/false);
        }
        break;
      case SecondSynBehavior::kAlwaysRst:
        send_rst();
        break;
      case SecondSynBehavior::kDualRst:
        send_rst();
        send_rst();
        break;
      case SecondSynBehavior::kIgnore:
        break;
    }
    return;
  }
  if (pkt.tcp.is_ack() && pkt.tcp.ack == snd_nxt_) {
    snd_una_ = pkt.tcp.ack;
    snd_wnd_ = pkt.tcp.window;
    retransmit_count_ = 0;
    cancel_rto();
    state_ = TcpState::kEstablished;
    if (on_established) on_established();
    if (state_ != TcpState::kClosed) {
      if (!pkt.payload.empty()) process_payload(pkt);
    }
    if (state_ != TcpState::kClosed && pkt.tcp.is_fin()) process_fin(pkt);
  }
}

void TcpEndpoint::handle_synchronized(const Packet& pkt) {
  if (pkt.tcp.is_rst()) {
    enter_closed();
    return;
  }
  if (pkt.tcp.is_syn()) {
    // SYN on a synchronized connection: challenge ACK (RFC 5961 behaviour).
    send_ack_now(/*duplicate=*/false);
    return;
  }
  if (pkt.tcp.is_ack()) process_ack(pkt);
  if (state_ == TcpState::kClosed) return;
  if (!pkt.payload.empty()) process_payload(pkt);
  if (state_ == TcpState::kClosed) return;
  if (pkt.tcp.is_fin()) process_fin(pkt);
}

void TcpEndpoint::process_ack(const Packet& pkt) {
  const std::uint32_t ack = pkt.tcp.ack;
  snd_wnd_ = pkt.tcp.window;
  if (seq_gt(ack, snd_una_) && seq_leq(ack, snd_nxt_)) {
    snd_una_ = ack;
    retransmit_count_ = 0;
    // Trim acknowledged bytes off the send buffer. The FIN occupies one
    // sequence number past the data, so clamp to the buffer size.
    const std::uint32_t data_acked = snd_una_ - send_buf_base_;
    const auto drop = std::min<std::size_t>(send_buf_.size(), data_acked);
    if (drop > 0) {
      send_buf_.erase(send_buf_.begin(), send_buf_.begin() + static_cast<std::ptrdiff_t>(drop));
      send_buf_base_ += static_cast<std::uint32_t>(drop);
    }
    cancel_rto();
    if (snd_una_ != snd_nxt_) {
      arm_rto();
    } else if (fin_sent_) {
      // Our FIN is acknowledged.
      if (state_ == TcpState::kFinWait1) {
        state_ = TcpState::kFinWait2;
      } else if (state_ == TcpState::kClosing || state_ == TcpState::kLastAck) {
        enter_closed();
        return;
      }
    }
  }
  try_send();
}

void TcpEndpoint::process_payload(const Packet& pkt) {
  const std::uint32_t seg_seq = pkt.tcp.seq;
  const auto len = static_cast<std::uint32_t>(pkt.payload.size());
  const std::uint32_t seg_end = seg_seq + len;

  if (seq_leq(seg_end, rcv_nxt_)) {
    // Entirely old data: acknowledge immediately so the sender can move on.
    send_ack_now(/*duplicate=*/true);
    return;
  }
  if (seq_gt(seg_seq, rcv_nxt_)) {
    // Out-of-order segment. Queue it (if in window) and emit an immediate
    // duplicate ACK — the behaviour every measurement technique leverages.
    if (seq_in_window(seg_seq, rcv_nxt_, behavior_.receive_window)) {
      auto [it, inserted] = reassembly_.try_emplace(seg_seq);
      if (inserted) {
        it->second = util::BufferPool::global().acquire(pkt.payload.size());
        it->second.assign(pkt.payload.begin(), pkt.payload.end());
        ++counters_.ooo_segments_queued;
      }
    }
    send_ack_now(/*duplicate=*/true);
    return;
  }

  // In-order (possibly overlapping) data.
  const std::uint32_t trim = rcv_nxt_ - seg_seq;
  deliver(std::span<const std::uint8_t>{pkt.payload}.subspan(trim));
  rcv_nxt_ = seg_end;
  const bool had_queued = !reassembly_.empty();
  drain_reassembly();
  if (had_queued) ++counters_.hole_fills;

  if (!reassembly_.empty()) {
    // Still a hole ahead: keep the sender informed immediately.
    send_ack_now(/*duplicate=*/true);
    return;
  }
  if (had_queued && behavior_.immediate_ack_on_hole_fill) {
    send_ack_now(/*duplicate=*/false);
    return;
  }
  if (behavior_.delayed_ack == DelayedAckPolicy::kNone) {
    send_ack_now(/*duplicate=*/false);
    return;
  }
  ++unacked_in_order_;
  if (unacked_in_order_ >= behavior_.ack_every) {
    send_ack_now(/*duplicate=*/false);
  } else {
    schedule_delayed_ack();
  }
}

void TcpEndpoint::process_fin(const Packet& pkt) {
  const std::uint32_t fin_seq = pkt.tcp.seq + static_cast<std::uint32_t>(pkt.payload.size());
  if (fin_received_) {
    send_ack_now(/*duplicate=*/true);
    return;
  }
  if (fin_seq != rcv_nxt_) {
    // FIN beyond a hole: treat as out-of-order, dup-ack.
    send_ack_now(/*duplicate=*/true);
    return;
  }
  fin_received_ = true;
  rcv_nxt_ += 1;
  send_ack_now(/*duplicate=*/false);
  switch (state_) {
    case TcpState::kEstablished:
      state_ = TcpState::kCloseWait;
      if (on_remote_close) on_remote_close();
      break;
    case TcpState::kFinWait1:
      // Simultaneous close; our FIN not yet acked.
      state_ = TcpState::kClosing;
      break;
    case TcpState::kFinWait2:
      enter_closed();  // TIME_WAIT elided in simulation
      break;
    default:
      break;
  }
}

void TcpEndpoint::deliver(std::span<const std::uint8_t> data) {
  if (!data.empty() && on_data) on_data(data);
}

void TcpEndpoint::drain_reassembly() {
  while (!reassembly_.empty()) {
    auto it = reassembly_.begin();
    if (seq_gt(it->first, rcv_nxt_)) break;
    const auto end = it->first + static_cast<std::uint32_t>(it->second.size());
    if (seq_gt(end, rcv_nxt_)) {
      const std::uint32_t trim = rcv_nxt_ - it->first;
      deliver(std::span<const std::uint8_t>{it->second}.subspan(trim));
      rcv_nxt_ = end;
    }
    util::BufferPool::global().release(std::move(it->second));
    reassembly_.erase(it);
  }
}

void TcpEndpoint::send_flags(std::uint8_t flags) {
  TcpHeader h;
  h.src_port = key_.local_port;
  h.dst_port = key_.remote_port;
  h.flags = flags;
  h.seq = snd_nxt_;
  if ((flags & kAck) != 0) h.ack = rcv_nxt_;
  h.window = clamp_window(behavior_.receive_window);
  sender_(h, {});
}

void TcpEndpoint::send_ack_now(bool duplicate) {
  cancel_delayed_ack();
  unacked_in_order_ = 0;
  ++counters_.acks_sent;
  if (duplicate) ++counters_.dup_acks_sent;
  send_flags(kAck);
}

void TcpEndpoint::send_rst() {
  ++counters_.rsts_sent;
  send_flags(kRst | kAck);
}

void TcpEndpoint::schedule_delayed_ack() {
  if (ack_pending_) return;
  ack_pending_ = true;
  const std::uint64_t gen = ++delack_generation_;
  delack_token_ =
      env_.schedule(behavior_.delayed_ack_timeout, [this, gen] { delayed_ack_fire(gen); });
}

void TcpEndpoint::cancel_delayed_ack() {
  if (!ack_pending_) return;
  env_.cancel(delack_token_);
  ack_pending_ = false;
  ++delack_generation_;
}

void TcpEndpoint::delayed_ack_fire(std::uint64_t generation) {
  if (!ack_pending_ || generation != delack_generation_) return;
  ack_pending_ = false;
  ++counters_.delayed_acks_sent;
  unacked_in_order_ = 0;
  ++counters_.acks_sent;
  send_flags(kAck);
}

void TcpEndpoint::send_data(std::span<const std::uint8_t> data) {
  if (state_ == TcpState::kClosed || fin_sent_ || fin_pending_) return;
  if (send_buf_.empty()) send_buf_base_ = snd_nxt_;
  send_buf_.insert(send_buf_.end(), data.begin(), data.end());
  try_send();
}

void TcpEndpoint::close() {
  if (state_ == TcpState::kClosed || fin_sent_ || fin_pending_) return;
  fin_pending_ = true;
  try_send();
}

void TcpEndpoint::abort() {
  if (state_ == TcpState::kClosed) return;
  send_rst();
  enter_closed();
}

void TcpEndpoint::try_send() {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait) return;

  const std::uint32_t buf_end_seq = send_buf_base_ + static_cast<std::uint32_t>(send_buf_.size());
  while (seq_lt(snd_nxt_, buf_end_seq)) {
    const std::uint32_t in_flight = snd_nxt_ - snd_una_;
    const std::uint32_t wnd_avail = snd_wnd_ > in_flight ? snd_wnd_ - in_flight : 0;
    const std::uint32_t unsent = buf_end_seq - snd_nxt_;
    const std::uint32_t chunk = std::min({static_cast<std::uint32_t>(peer_mss_), wnd_avail, unsent});
    if (chunk == 0) break;  // window closed; rely on the peer's next ACK

    const std::uint32_t offset = snd_nxt_ - send_buf_base_;
    TcpHeader h;
    h.src_port = key_.local_port;
    h.dst_port = key_.remote_port;
    h.flags = kAck | kPsh;
    h.seq = snd_nxt_;
    h.ack = rcv_nxt_;
    h.window = clamp_window(behavior_.receive_window);
    std::vector<std::uint8_t> payload = util::BufferPool::global().acquire(chunk);
    payload.assign(send_buf_.begin() + offset, send_buf_.begin() + offset + chunk);
    // Data segments carry the current ACK; any pending delayed ACK rides out.
    cancel_delayed_ack();
    unacked_in_order_ = 0;
    snd_nxt_ += chunk;
    sender_(h, std::move(payload));
    arm_rto();
  }

  if (fin_pending_ && !fin_sent_ && snd_nxt_ == buf_end_seq) {
    fin_sent_ = true;
    fin_pending_ = false;
    send_flags(kFin | kAck);
    snd_nxt_ += 1;
    if (state_ == TcpState::kEstablished) {
      state_ = TcpState::kFinWait1;
    } else if (state_ == TcpState::kCloseWait) {
      state_ = TcpState::kLastAck;
    }
    arm_rto();
  }
}

void TcpEndpoint::arm_rto() {
  if (rto_token_ != 0) return;
  if (current_rto_.is_zero()) current_rto_ = behavior_.initial_rto;
  const std::uint64_t gen = ++rto_generation_;
  rto_token_ = env_.schedule(current_rto_, [this, gen] { rto_fire(gen); });
}

void TcpEndpoint::cancel_rto() {
  if (rto_token_ == 0) return;
  env_.cancel(rto_token_);
  rto_token_ = 0;
  ++rto_generation_;
  current_rto_ = behavior_.initial_rto;
}

void TcpEndpoint::rto_fire(std::uint64_t generation) {
  if (generation != rto_generation_ || rto_token_ == 0) return;
  rto_token_ = 0;
  if (snd_una_ == snd_nxt_ && state_ != TcpState::kSynRcvd) return;  // nothing outstanding
  ++retransmit_count_;
  if (retransmit_count_ > behavior_.max_retransmits) {
    util::log_debug("endpoint %u: giving up after %d retransmits", key_.local_port,
                    retransmit_count_ - 1);
    enter_closed();
    return;
  }
  ++counters_.retransmissions;
  retransmit_one();
  current_rto_ = current_rto_ * 2;
  arm_rto();
}

void TcpEndpoint::retransmit_one() {
  if (state_ == TcpState::kSynRcvd) {
    TcpHeader h;
    h.src_port = key_.local_port;
    h.dst_port = key_.remote_port;
    h.flags = kSyn | kAck;
    h.seq = iss_;
    h.ack = rcv_nxt_;
    h.window = clamp_window(behavior_.receive_window);
    h.mss = behavior_.mss_to_advertise;
    sender_(h, {});
    return;
  }
  const std::uint32_t buf_end_seq = send_buf_base_ + static_cast<std::uint32_t>(send_buf_.size());
  if (seq_lt(snd_una_, buf_end_seq)) {
    // Resend the earliest unacknowledged data segment.
    const std::uint32_t offset = snd_una_ - send_buf_base_;
    const std::uint32_t chunk =
        std::min<std::uint32_t>(peer_mss_, buf_end_seq - snd_una_);
    TcpHeader h;
    h.src_port = key_.local_port;
    h.dst_port = key_.remote_port;
    h.flags = kAck | kPsh;
    h.seq = snd_una_;
    h.ack = rcv_nxt_;
    h.window = clamp_window(behavior_.receive_window);
    std::vector<std::uint8_t> payload = util::BufferPool::global().acquire(chunk);
    payload.assign(send_buf_.begin() + offset, send_buf_.begin() + offset + chunk);
    sender_(h, std::move(payload));
    return;
  }
  if (fin_sent_ && snd_una_ != snd_nxt_) {
    // Only the FIN is outstanding.
    TcpHeader h;
    h.src_port = key_.local_port;
    h.dst_port = key_.remote_port;
    h.flags = kFin | kAck;
    h.seq = snd_nxt_ - 1;
    h.ack = rcv_nxt_;
    h.window = clamp_window(behavior_.receive_window);
    sender_(h, {});
  }
}

void TcpEndpoint::enter_closed() {
  cancel_delayed_ack();
  cancel_rto();
  if (state_ == TcpState::kClosed) return;
  state_ = TcpState::kClosed;
  if (on_closed) on_closed();
}

}  // namespace reorder::tcpip
