#include "tcpip/fragment.hpp"

#include <algorithm>
#include <map>

#include "tcpip/ipv4.hpp"
#include "util/byte_io.hpp"

namespace reorder::tcpip {

std::vector<std::vector<std::uint8_t>> fragment_datagram(
    std::span<const std::uint8_t> datagram, std::size_t mtu) {
  if (datagram.size() <= mtu) {
    return {std::vector<std::uint8_t>{datagram.begin(), datagram.end()}};
  }
  util::ByteReader r{datagram};
  const auto parsed = Ipv4Header::parse(r);
  if (parsed.header.dont_fragment) return {};
  const auto payload = datagram.subspan(Ipv4Header::kWireSize);

  // Payload bytes per fragment: multiple of 8, as the offset field demands.
  const std::size_t per_fragment = ((mtu - Ipv4Header::kWireSize) / 8) * 8;
  if (per_fragment == 0) return {};

  std::vector<std::vector<std::uint8_t>> out;
  for (std::size_t off = 0; off < payload.size(); off += per_fragment) {
    const std::size_t len = std::min(per_fragment, payload.size() - off);
    Ipv4Header h = parsed.header;
    h.fragment_offset = static_cast<std::uint16_t>(
        parsed.header.fragment_offset + off / 8);
    h.more_fragments = (off + len < payload.size()) || parsed.header.more_fragments;
    std::vector<std::uint8_t> frag;
    frag.reserve(Ipv4Header::kWireSize + len);
    util::ByteWriter w{frag};
    h.serialize(w, len);
    w.bytes(payload.subspan(off, len));
    out.push_back(std::move(frag));
  }
  return out;
}

std::optional<std::vector<std::uint8_t>> reassemble_datagram(
    const std::vector<std::vector<std::uint8_t>>& fragments) {
  if (fragments.empty()) return std::nullopt;

  struct Piece {
    Ipv4Header header;
    std::vector<std::uint8_t> payload;
  };
  std::map<std::uint32_t, Piece> by_offset;  // byte offset -> piece
  std::optional<std::uint32_t> total_len;
  std::optional<Ipv4Header> first_header;

  for (const auto& frag : fragments) {
    util::ByteReader r{frag};
    Ipv4Header::Parsed parsed;
    try {
      parsed = Ipv4Header::parse(r);
    } catch (const util::ParseError&) {
      return std::nullopt;
    }
    if (parsed.total_length != frag.size()) return std::nullopt;
    if (first_header.has_value()) {
      // All fragments must share the reassembly key.
      if (parsed.header.identification != first_header->identification ||
          parsed.header.src != first_header->src || parsed.header.dst != first_header->dst ||
          parsed.header.protocol != first_header->protocol) {
        return std::nullopt;
      }
    } else {
      first_header = parsed.header;
    }
    const std::uint32_t offset = static_cast<std::uint32_t>(parsed.header.fragment_offset) * 8;
    Piece piece;
    piece.header = parsed.header;
    piece.payload.assign(frag.begin() + Ipv4Header::kWireSize, frag.end());
    if (!parsed.header.more_fragments) {
      const std::uint32_t end = offset + static_cast<std::uint32_t>(piece.payload.size());
      if (total_len.has_value() && *total_len != end) return std::nullopt;
      total_len = end;
    }
    // Duplicates (retransmitted fragments) must be byte-identical.
    const auto [it, inserted] = by_offset.emplace(offset, std::move(piece));
    if (!inserted && it->second.payload.size() != by_offset.at(offset).payload.size()) {
      return std::nullopt;
    }
  }
  if (!total_len.has_value()) return std::nullopt;

  std::vector<std::uint8_t> payload;
  std::uint32_t expect = 0;
  for (const auto& [offset, piece] : by_offset) {
    if (offset != expect) return std::nullopt;  // hole (or overlap)
    payload.insert(payload.end(), piece.payload.begin(), piece.payload.end());
    expect = offset + static_cast<std::uint32_t>(piece.payload.size());
  }
  if (expect != *total_len) return std::nullopt;

  Ipv4Header h = *first_header;
  h.fragment_offset = 0;
  h.more_fragments = false;
  std::vector<std::uint8_t> out;
  out.reserve(Ipv4Header::kWireSize + payload.size());
  util::ByteWriter w{out};
  h.serialize(w, payload.size());
  w.bytes(payload);
  return out;
}

}  // namespace reorder::tcpip
