// Wrap-safe 32-bit TCP sequence-number arithmetic (RFC 793 comparisons).
// All comparisons are modulo 2^32 with a signed-distance interpretation:
// a < b iff the shortest walk from a to b is forward and non-zero.
#pragma once

#include <cstdint>

namespace reorder::tcpip {

/// Signed distance from `a` to `b` on the sequence circle.
constexpr std::int32_t seq_diff(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b);
}

constexpr bool seq_lt(std::uint32_t a, std::uint32_t b) { return seq_diff(a, b) < 0; }
constexpr bool seq_leq(std::uint32_t a, std::uint32_t b) { return seq_diff(a, b) <= 0; }
constexpr bool seq_gt(std::uint32_t a, std::uint32_t b) { return seq_diff(a, b) > 0; }
constexpr bool seq_geq(std::uint32_t a, std::uint32_t b) { return seq_diff(a, b) >= 0; }

/// True iff seq lies in the half-open window [lo, lo + size).
constexpr bool seq_in_window(std::uint32_t seq, std::uint32_t lo, std::uint32_t size) {
  return seq_geq(seq, lo) && seq_lt(seq, lo + size);
}

/// The greater of two sequence numbers under circular comparison.
constexpr std::uint32_t seq_max(std::uint32_t a, std::uint32_t b) {
  return seq_geq(a, b) ? a : b;
}

/// 16-bit IPID circular comparison (same idea, half the width). Used by the
/// dual-connection test to order acknowledgment packets by their IPIDs.
constexpr std::int16_t ipid_diff(std::uint16_t a, std::uint16_t b) {
  return static_cast<std::int16_t>(static_cast<std::uint16_t>(a - b));
}

constexpr bool ipid_lt(std::uint16_t a, std::uint16_t b) { return ipid_diff(a, b) < 0; }
constexpr bool ipid_gt(std::uint16_t a, std::uint16_t b) { return ipid_diff(a, b) > 0; }

}  // namespace reorder::tcpip
