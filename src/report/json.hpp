// A minimal JSON value — just enough for the report layer's machine-
// readable emitters (JSON Lines) and their round-trip tests. No external
// dependency: objects preserve insertion order (stable emitter output),
// numbers are doubles with an integer fast path, dump() is compact
// single-line (one value per JSONL line), parse() accepts standard JSON.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace reorder::report {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null
  Json(std::nullptr_t) {}
  Json(bool b) : value_{b} {}
  Json(double d) : value_{d} {}
  Json(int i) : value_{static_cast<double>(i)} {}
  Json(std::int64_t i) : value_{static_cast<double>(i)} {}
  Json(std::uint64_t u) : value_{static_cast<double>(u)} {}
  Json(const char* s) : value_{std::string{s}} {}
  Json(std::string s) : value_{std::move(s)} {}
  Json(std::string_view s) : value_{std::string{s}} {}

  /// Lossless 64-bit unsigned carrier. Values representable exactly as a
  /// double (<= 2^53) become plain numbers; larger ones become decimal
  /// strings, since the number representation here is a double and would
  /// silently round them. Read back with as_u64(), which accepts both.
  static Json u64(std::uint64_t v);
  std::uint64_t as_u64() const;

  static Json array() {
    Json j;
    j.value_ = Array{};
    return j;
  }
  static Json object() {
    Json j;
    j.value_ = Object{};
    return j;
  }

  Type type() const { return static_cast<Type>(value_.index()); }
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_number() const { return type() == Type::kNumber; }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  /// Typed accessors; throw std::runtime_error on a type mismatch.
  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;

  // ----- object -----
  /// Sets a key (object only; a null value promotes to an object).
  Json& set(std::string key, Json value);
  bool contains(std::string_view key) const;
  /// Member access; throws std::out_of_range when absent.
  const Json& at(std::string_view key) const;
  /// Member access returning nullptr when absent (or not an object).
  const Json* find(std::string_view key) const;

  // ----- array -----
  /// Appends (array only; a null value promotes to an array).
  Json& push(Json value);
  const Json& at(std::size_t i) const;
  std::size_t size() const;

  /// Iteration over array elements / object members.
  const std::vector<Json>& items() const;
  const std::vector<std::pair<std::string, Json>>& members() const;

  /// Compact single-line rendering (stable member order).
  std::string dump() const;

  /// Parses one JSON document; empty on malformed input or trailing junk.
  static std::optional<Json> parse(std::string_view text);

 private:
  struct Array {
    std::vector<Json> items;
  };
  struct Object {
    std::vector<std::pair<std::string, Json>> members;  // insertion order
  };
  std::variant<std::monostate, bool, double, std::string, Array, Object> value_;
};

}  // namespace reorder::report
