// The human side of the report layer: a column-aligned text table that
// replaces the hand-rolled printf loops every bench used to carry. Build
// columns, append rows (cells are preformatted strings; the fmt helpers
// cover the common numeric renderings), print. The same rows render as
// CSV for spreadsheet-side analysis.
#pragma once

#include <cstdint>
#include <cstdio>
#include <iosfwd>
#include <string>
#include <vector>

namespace reorder::report {

enum class Align { kLeft, kRight };

struct Column {
  std::string header;
  Align align{Align::kRight};
};

class Table {
 public:
  explicit Table(std::vector<Column> columns);
  /// Headers only: first column left-aligned (labels), the rest right.
  static Table with_headers(std::vector<std::string> headers);

  std::size_t columns() const { return columns_.size(); }
  std::size_t rows() const { return rows_.size(); }

  /// Appends a row; short rows are padded with empty cells, long rows
  /// throw std::invalid_argument.
  Table& row(std::vector<std::string> cells);

  /// Aligned rendering: header, dashed rule, rows. Two-space gutters.
  std::string to_string() const;
  void print(std::FILE* out = stdout) const;

  /// The same header + rows as RFC-4180-quoted CSV.
  void write_csv(std::ostream& out) const;

 private:
  std::vector<Column> columns_;
  std::vector<std::vector<std::string>> rows_;
};

// ---------------------------------------------------------- cell helpers

/// Fixed-point double ("0.123").
std::string fixed(double v, int precision = 3);
/// Fixed-point with an explicit sign ("+0.023").
std::string signed_fixed(double v, int precision = 3);
/// Percentage of a fraction ("12.5" for 0.125).
std::string percent(double fraction, int precision = 1);
std::string integer(std::int64_t v);

}  // namespace reorder::report
