#include "report/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace reorder::report {

namespace {

[[noreturn]] void type_error(const char* wanted) {
  throw std::runtime_error{std::string{"Json: value is not "} + wanted};
}

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(double d, std::string& out) {
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 9.0e15) {
    out += std::to_string(static_cast<std::int64_t>(d));
    return;
  }
  if (!std::isfinite(d)) {  // JSON has no inf/nan; emit null
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
}

// ------------------------------------------------------------- parsing

struct Parser {
  std::string_view text;
  std::size_t pos{0};

  void skip_ws() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  }
  bool eat(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool match(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  std::optional<Json> value() {
    skip_ws();
    if (pos >= text.size()) return std::nullopt;
    switch (text[pos]) {
      case 'n': return match("null") ? std::optional<Json>{Json{}} : std::nullopt;
      case 't': return match("true") ? std::optional<Json>{Json{true}} : std::nullopt;
      case 'f': return match("false") ? std::optional<Json>{Json{false}} : std::nullopt;
      case '"': return string_value();
      case '[': return array_value();
      case '{': return object_value();
      default: return number_value();
    }
  }

  std::optional<Json> number_value() {
    // JSON numbers start with '-' or a digit; from_chars alone would also
    // accept "inf"/"nan" tokens, which JSON has no grammar for.
    if (text[pos] != '-' && !std::isdigit(static_cast<unsigned char>(text[pos]))) {
      return std::nullopt;
    }
    double d = 0;
    const auto* begin = text.data() + pos;
    const auto* end = text.data() + text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, d);
    if (ec != std::errc{} || ptr == begin || !std::isfinite(d)) return std::nullopt;
    pos += static_cast<std::size_t>(ptr - begin);
    return Json{d};
  }

  std::optional<std::string> string_body() {
    if (!eat('"')) return std::nullopt;
    std::string out;
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) return std::nullopt;
      const char esc = text[pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos + 4 > text.size()) return std::nullopt;
          unsigned int code = 0;
          const auto* begin = text.data() + pos;
          const auto [ptr, ec] = std::from_chars(begin, begin + 4, code, 16);
          if (ec != std::errc{} || ptr != begin + 4) return std::nullopt;
          pos += 4;
          // Basic-multilingual-plane only; encode as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> string_value() {
    auto body = string_body();
    if (!body) return std::nullopt;
    return Json{std::move(*body)};
  }

  std::optional<Json> array_value() {
    if (!eat('[')) return std::nullopt;
    Json out = Json::array();
    skip_ws();
    if (eat(']')) return out;
    while (true) {
      auto v = value();
      if (!v) return std::nullopt;
      out.push(std::move(*v));
      skip_ws();
      if (eat(']')) return out;
      if (!eat(',')) return std::nullopt;
    }
  }

  std::optional<Json> object_value() {
    if (!eat('{')) return std::nullopt;
    Json out = Json::object();
    skip_ws();
    if (eat('}')) return out;
    while (true) {
      skip_ws();
      auto key = string_body();
      if (!key) return std::nullopt;
      skip_ws();
      if (!eat(':')) return std::nullopt;
      auto v = value();
      if (!v) return std::nullopt;
      out.set(std::move(*key), std::move(*v));
      skip_ws();
      if (eat('}')) return out;
      if (!eat(',')) return std::nullopt;
    }
  }
};

}  // namespace

bool Json::as_bool() const {
  if (const auto* b = std::get_if<bool>(&value_)) return *b;
  type_error("a bool");
}

double Json::as_double() const {
  if (const auto* d = std::get_if<double>(&value_)) return *d;
  type_error("a number");
}

std::int64_t Json::as_int() const { return static_cast<std::int64_t>(as_double()); }

Json Json::u64(std::uint64_t v) {
  constexpr std::uint64_t kExactDoubleMax = 1ull << 53;
  if (v <= kExactDoubleMax) return Json{v};
  return Json{std::to_string(v)};
}

std::uint64_t Json::as_u64() const {
  if (const auto* d = std::get_if<double>(&value_)) {
    if (*d < 0 || *d != std::floor(*d)) type_error("a non-negative integer");
    return static_cast<std::uint64_t>(*d);
  }
  if (const auto* s = std::get_if<std::string>(&value_)) {
    std::uint64_t v = 0;
    const auto [ptr, ec] = std::from_chars(s->data(), s->data() + s->size(), v);
    if (ec != std::errc{} || ptr != s->data() + s->size()) {
      type_error("a decimal u64 string");
    }
    return v;
  }
  type_error("a u64 (number or decimal string)");
}

const std::string& Json::as_string() const {
  if (const auto* s = std::get_if<std::string>(&value_)) return *s;
  type_error("a string");
}

Json& Json::set(std::string key, Json value) {
  if (is_null()) value_ = Object{};
  auto* obj = std::get_if<Object>(&value_);
  if (obj == nullptr) type_error("an object");
  for (auto& [k, v] : obj->members) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  obj->members.emplace_back(std::move(key), std::move(value));
  return *this;
}

bool Json::contains(std::string_view key) const { return find(key) != nullptr; }

const Json* Json::find(std::string_view key) const {
  const auto* obj = std::get_if<Object>(&value_);
  if (obj == nullptr) return nullptr;
  for (const auto& [k, v] : obj->members) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const auto* v = find(key);
  if (v == nullptr) throw std::out_of_range{"Json: no member '" + std::string{key} + "'"};
  return *v;
}

Json& Json::push(Json value) {
  if (is_null()) value_ = Array{};
  auto* arr = std::get_if<Array>(&value_);
  if (arr == nullptr) type_error("an array");
  arr->items.push_back(std::move(value));
  return *this;
}

const Json& Json::at(std::size_t i) const { return items().at(i); }

std::size_t Json::size() const {
  if (const auto* arr = std::get_if<Array>(&value_)) return arr->items.size();
  if (const auto* obj = std::get_if<Object>(&value_)) return obj->members.size();
  return 0;
}

const std::vector<Json>& Json::items() const {
  if (const auto* arr = std::get_if<Array>(&value_)) return arr->items;
  type_error("an array");
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (const auto* obj = std::get_if<Object>(&value_)) return obj->members;
  type_error("an object");
}

std::string Json::dump() const {
  std::string out;
  switch (type()) {
    case Type::kNull: out = "null"; break;
    case Type::kBool: out = as_bool() ? "true" : "false"; break;
    case Type::kNumber: dump_number(as_double(), out); break;
    case Type::kString: dump_string(as_string(), out); break;
    case Type::kArray: {
      out = "[";
      bool first = true;
      for (const auto& v : items()) {
        if (!first) out += ',';
        first = false;
        out += v.dump();
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      out = "{";
      bool first = true;
      for (const auto& [k, v] : members()) {
        if (!first) out += ',';
        first = false;
        dump_string(k, out);
        out += ':';
        out += v.dump();
      }
      out += '}';
      break;
    }
  }
  return out;
}

std::optional<Json> Json::parse(std::string_view text) {
  Parser p{text};
  auto v = p.value();
  if (!v) return std::nullopt;
  p.skip_ws();
  if (p.pos != text.size()) return std::nullopt;  // trailing junk
  return v;
}

}  // namespace reorder::report
