// ResultSink implementations that serialize the measurement event stream.
//
// JsonlResultSink is the canonical machine-readable consumer: every
// survey event becomes one JSON object per line, written as it arrives
// (streaming — nothing is buffered until "the end"). The line schema is
// documented in the README ("JSONL schema") and kept parseable back into
// estimates by the helpers below, which the golden round-trip tests use.
//
//   {"type":"survey_begin","targets":3,"rounds":4,"at_ns":0}
//   {"type":"sample","target":"host-0","test":"syn","measurement":0,
//    "sample":2,"fwd":"reordered","rev":"in-order","gap_ns":0,
//    "started_ns":..,"completed_ns":..}
//   {"type":"measurement","target":"host-0","test":"syn","measurement":0,
//    "at_ns":0,"admissible":true,"samples":15,"note":"",
//    "fwd":{"in_order":13,"reordered":2,"ambiguous":0,"lost":0},
//    "rev":{...}}
//   {"type":"survey_end","targets":3,"rounds":4,"measurements":24,...}
//
// Rates are deliberately not stored — they are derivable from the counts,
// and re-deriving them is exactly what the round-trip test checks.
#pragma once

#include "core/result_sink.hpp"
#include "report/jsonl.hpp"

namespace reorder::report {

class JsonlResultSink final : public core::ResultSink {
 public:
  struct Options {
    bool samples{true};       ///< emit per-sample lines
    bool measurements{true};  ///< emit per-measurement lines
    bool lifecycle{true};     ///< emit survey_begin / survey_end lines
  };

  explicit JsonlResultSink(JsonlWriter& out) : out_{out} {}
  JsonlResultSink(JsonlWriter& out, Options options) : out_{out}, options_{options} {}

  void on_survey_begin(const core::SurveyEvent& e) override;
  void on_sample(const core::SampleEvent& e) override;
  void on_measurement(const core::MeasurementEvent& e) override;
  void on_survey_end(const core::SurveyEvent& e) override;

 private:
  JsonlWriter& out_;
  Options options_;
};

// ------------------------------------------- event <-> JSON conversions

Json to_json(const core::ReorderEstimate& estimate);
Json to_json(const core::SampleEvent& e);
Json to_json(const core::MeasurementEvent& e);

/// The survey_begin / survey_end line (`type` selects which; survey_end
/// carries the degraded-mode accounting tail). Exposed so offline tools
/// (reorder-merge) emit byte-identical lifecycle records.
Json survey_event_json(const char* type, const core::SurveyEvent& e);

/// Rebuilds an estimate from a to_json(ReorderEstimate) object.
/// Throws (std::out_of_range / std::runtime_error) on schema mismatch.
core::ReorderEstimate estimate_from_json(const Json& j);

}  // namespace reorder::report
