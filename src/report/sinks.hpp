// ResultSink implementations that serialize the measurement event stream.
//
// JsonlResultSink is the canonical machine-readable consumer: every
// survey event becomes one JSON object per line, written as it arrives
// (streaming — nothing is buffered until "the end"). The line schema is
// documented in the README ("JSONL schema") and kept parseable back into
// estimates by the helpers below, which the golden round-trip tests use.
//
//   {"type":"survey_begin","targets":3,"rounds":4,"at_ns":0}
//   {"type":"sample","target":"host-0","test":"syn","measurement":0,
//    "sample":2,"fwd":"reordered","rev":"in-order","gap_ns":0,
//    "started_ns":..,"completed_ns":..}
//   {"type":"measurement","target":"host-0","test":"syn","measurement":0,
//    "at_ns":0,"admissible":true,"samples":15,"note":"",
//    "fwd":{"in_order":13,"reordered":2,"ambiguous":0,"lost":0},
//    "rev":{...}}
//   {"type":"survey_end","targets":3,"rounds":4,"measurements":24,...}
//
// Rates are deliberately not stored — they are derivable from the counts,
// and re-deriving them is exactly what the round-trip test checks.
#pragma once

#include <cstdio>

#include "core/result_sink.hpp"
#include "report/jsonl.hpp"

namespace reorder::report {

/// Rate limit for human-facing narration. Per-event output is readable at
/// 8 targets and unusable at a million, so a policy admits the first
/// `first` events in full and every `every`-th one after that — counting
/// ADMITTED-STREAM position, so the sampling cadence is stable however
/// large the run grows.
struct NarrationPolicy {
  /// Events narrated unconditionally, from the start.
  std::size_t first{16};
  /// Beyond `first`, narrate every Nth event; 0 = quiet after `first`.
  std::size_t every{0};

  bool admits(std::size_t n) const {
    if (n < first) return true;
    return every != 0 && (n - first) % every == 0;
  }

  /// The survey_fleet / survey_service default: full narration
  /// (`full_limit` events, then quiet) for fleets up to 10k targets;
  /// above that, a short head then roughly one line per 10k events.
  static NarrationPolicy auto_for(std::size_t targets, std::size_t full_limit) {
    if (targets <= 10'000) return NarrationPolicy{full_limit, 0};
    return NarrationPolicy{16, 10'000};
  }

  /// The --narrate-every flag: negative = auto_for, 0 = fully quiet,
  /// N >= 1 = every Nth event from the start.
  static NarrationPolicy from_flag(std::int64_t narrate_every, std::size_t targets,
                                   std::size_t full_limit) {
    if (narrate_every < 0) return auto_for(targets, full_limit);
    if (narrate_every == 0) return NarrationPolicy{0, 0};
    return NarrationPolicy{0, static_cast<std::size_t>(narrate_every)};
  }
};

/// Prints completions as a survey publishes them — mid-run, in event
/// order — under a NarrationPolicy rate limit. The human-facing
/// counterpart of JsonlResultSink; the examples attach one of each.
class NarratingSink final : public core::ResultSink {
 public:
  explicit NarratingSink(NarrationPolicy policy, std::FILE* out = stdout)
      : policy_{policy}, out_{out} {}

  void on_survey_begin(const core::SurveyEvent& e) override;
  void on_measurement(const core::MeasurementEvent& e) override;
  void on_survey_end(const core::SurveyEvent& e) override;

  /// Events narrated / seen so far.
  std::size_t narrated() const { return narrated_; }
  std::size_t seen() const { return seen_; }

  /// The policy's admit-and-count step, exposed for narrators that are
  /// not ResultSinks (the service's per-target completion callback).
  bool tick() {
    const bool print = policy_.admits(seen_++);
    if (print) ++narrated_;
    return print;
  }

 private:
  NarrationPolicy policy_;
  std::FILE* out_;
  std::size_t seen_{0};
  std::size_t narrated_{0};
};

class JsonlResultSink final : public core::ResultSink {
 public:
  struct Options {
    bool samples{true};       ///< emit per-sample lines
    bool measurements{true};  ///< emit per-measurement lines
    bool lifecycle{true};     ///< emit survey_begin / survey_end lines
  };

  explicit JsonlResultSink(JsonlWriter& out) : out_{out} {}
  JsonlResultSink(JsonlWriter& out, Options options) : out_{out}, options_{options} {}

  void on_survey_begin(const core::SurveyEvent& e) override;
  void on_sample(const core::SampleEvent& e) override;
  void on_measurement(const core::MeasurementEvent& e) override;
  void on_survey_end(const core::SurveyEvent& e) override;

 private:
  JsonlWriter& out_;
  Options options_;
};

// ------------------------------------------- event <-> JSON conversions

Json to_json(const core::ReorderEstimate& estimate);
Json to_json(const core::SampleEvent& e);
Json to_json(const core::MeasurementEvent& e);

/// The survey_begin / survey_end line (`type` selects which; survey_end
/// carries the degraded-mode accounting tail). Exposed so offline tools
/// (reorder-merge) emit byte-identical lifecycle records.
Json survey_event_json(const char* type, const core::SurveyEvent& e);

/// Rebuilds an estimate from a to_json(ReorderEstimate) object.
/// Throws (std::out_of_range / std::runtime_error) on schema mismatch.
core::ReorderEstimate estimate_from_json(const Json& j);

}  // namespace reorder::report
