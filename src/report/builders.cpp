#include "report/builders.hpp"

#include <algorithm>

namespace reorder::report {

// ------------------------------------------------------- RateCdfReport

void RateCdfReport::add_path(double forward_rate, double reverse_rate) {
  forward_.add(forward_rate);
  reverse_.add(reverse_rate);
  ++paths_;
  if (forward_rate > 0.0 || reverse_rate > 0.0) ++paths_with_reordering_;
}

void RateCdfReport::add_target(const metrics::MetricEngine& engine, const std::string& target,
                               const std::vector<std::string>& tests) {
  core::ReorderEstimate fwd;
  core::ReorderEstimate rev;
  if (tests.empty()) {
    for (const auto& [t, test] : engine.keys()) {
      if (t != target) continue;
      fwd += engine.aggregate(target, test, /*forward=*/true);
      rev += engine.aggregate(target, test, /*forward=*/false);
    }
  } else {
    for (const auto& test : tests) {
      fwd += engine.aggregate(target, test, /*forward=*/true);
      rev += engine.aggregate(target, test, /*forward=*/false);
    }
  }
  add_path(fwd.rate_or(0.0), rev.rate_or(0.0));
}

Table RateCdfReport::table() const {
  Table t = Table::with_headers({"rate", "CDF(forward)", "CDF(reverse)"});
  for (const double r : thresholds_) {
    t.row({fixed(r, 3), fixed(forward_.cdf(r), 2), fixed(reverse_.cdf(r), 2)});
  }
  return t;
}

void RateCdfReport::emit_jsonl(JsonlWriter& out) const {
  for (const double r : thresholds_) {
    Json row = Json::object();
    row.set("type", "row");
    row.set("report", "rate_cdf");
    row.set("rate", r);
    row.set("fwd_cdf", forward_.cdf(r));
    row.set("rev_cdf", reverse_.cdf(r));
    out.write(row);
  }
  Json summary = Json::object();
  summary.set("type", "summary");
  summary.set("report", "rate_cdf");
  summary.set("paths", paths_);
  summary.set("paths_with_reordering", paths_with_reordering_);
  if (!forward_.empty()) {
    summary.set("median_fwd_rate", forward_.quantile(0.5));
    summary.set("median_rev_rate", reverse_.quantile(0.5));
  }
  out.write(summary);
}

// ---------------------------------------------------- TimeDomainReport

Table TimeDomainReport::table() const {
  Table t = Table::with_headers({"gap(us)", "samples", "reordered", "rate"});
  for (const auto& p : profile_.points()) {
    if (table_every_us_ > 1 && p.gap.us() % table_every_us_ != 0) continue;
    t.row({integer(p.gap.us()), integer(p.estimate.usable()), integer(p.estimate.reordered),
           fixed(p.estimate.rate_or(0.0), 4)});
  }
  return t;
}

void TimeDomainReport::emit_jsonl(JsonlWriter& out) const {
  for (const auto& p : profile_.points()) {
    Json row = Json::object();
    row.set("type", "row");
    row.set("report", "time_domain");
    row.set("gap_us", p.gap.us());
    row.set("in_order", p.estimate.in_order);
    row.set("reordered", p.estimate.reordered);
    row.set("ambiguous", p.estimate.ambiguous);
    row.set("lost", p.estimate.lost);
    if (const auto rate = p.estimate.rate()) row.set("rate", *rate);
    out.write(row);
  }
  Json summary = Json::object();
  summary.set("type", "summary");
  summary.set("report", "time_domain");
  summary.set("points", profile_.distinct_gaps());
  if (const auto r0 = profile_.interpolate_rate(util::Duration::nanos(0))) {
    summary.set("back_to_back_rate", *r0);
  }
  out.write(summary);
}

// ------------------------------------------------ PairDifferenceReport

PairDifferenceReport::Pair& PairDifferenceReport::pair(const std::string& test_a,
                                                       const std::string& test_b) {
  for (auto& p : pairs_) {
    if (p.test_a == test_a && p.test_b == test_b) return p;
  }
  pairs_.push_back(Pair{test_a, test_b, 0, 0, 0, 0});
  return pairs_.back();
}

void PairDifferenceReport::add(const std::string& test_a, const std::string& test_b,
                               bool forward, bool null_supported) {
  Pair& p = pair(test_a, test_b);
  if (forward) {
    ++p.fwd_total;
    p.fwd_supported += null_supported ? 1 : 0;
  } else {
    ++p.rev_total;
    p.rev_supported += null_supported ? 1 : 0;
  }
}

bool PairDifferenceReport::add_compare(const metrics::MetricEngine& engine,
                                       const std::string& target, const std::string& test_a,
                                       const std::string& test_b, bool forward,
                                       double confidence) {
  auto a = engine.rate_series(target, test_a, forward);
  auto b = engine.rate_series(target, test_b, forward);
  const std::size_t n = std::min(a.size(), b.size());
  if (n < 2) return false;
  a.resize(n);
  b.resize(n);
  const auto r = stats::pair_difference_test(a, b, confidence);
  add(test_a, test_b, forward, r.null_supported);
  return true;
}

namespace {

std::string pct_or_dash(int supported, int total) {
  if (total == 0) return "-";
  return percent(static_cast<double>(supported) / total, 0);
}

}  // namespace

Table PairDifferenceReport::table() const {
  Table t = Table::with_headers({"test pair", "fwd null-ok %", "rev null-ok %"});
  for (const auto& p : pairs_) {
    t.row({p.test_a + " vs " + p.test_b, pct_or_dash(p.fwd_supported, p.fwd_total),
           pct_or_dash(p.rev_supported, p.rev_total)});
  }
  return t;
}

void PairDifferenceReport::emit_jsonl(JsonlWriter& out) const {
  for (const auto& p : pairs_) {
    Json row = Json::object();
    row.set("type", "row");
    row.set("report", "pair_difference");
    row.set("test_a", p.test_a);
    row.set("test_b", p.test_b);
    row.set("fwd_supported", p.fwd_supported);
    row.set("fwd_total", p.fwd_total);
    row.set("rev_supported", p.rev_supported);
    row.set("rev_total", p.rev_total);
    out.write(row);
  }
}

// --------------------------------------------------- ValidationReport

void ValidationReport::add(Row row) { rows_.push_back(std::move(row)); }

std::optional<double> ValidationReport::Summary::confirmed_fraction() const {
  if (total_samples == 0) return std::nullopt;
  return 1.0 - static_cast<double>(mismatched_samples) / static_cast<double>(total_samples);
}

ValidationReport::Summary ValidationReport::summary(int samples_per_two_way_test) const {
  Summary s;
  for (const auto& row : rows_) {
    ++s.tests_run;
    if (row.fwd_p.has_value()) {
      // Two-way test: both directions verified against traces.
      const int fwd_diff = row.cmp.reported_fwd - row.cmp.actual_fwd;
      if (fwd_diff != 0 || row.cmp.fwd_mismatches != 0) ++s.fwd_discrepant_tests;
      s.total_samples += 2L * samples_per_two_way_test;
      s.mismatched_samples += row.cmp.fwd_mismatches + row.cmp.rev_mismatches;
    } else {
      // One-way test (data transfer): only the reverse path is measured.
      s.total_samples += row.cmp.verified_samples;
      s.mismatched_samples += row.cmp.rev_mismatches;
    }
    const int rev_diff = row.cmp.reported_rev - row.cmp.actual_rev;
    if (rev_diff != 0 || row.cmp.rev_mismatches != 0) ++s.rev_discrepant_tests;
  }
  return s;
}

Table ValidationReport::table() const {
  Table t{std::vector<Column>{{"test", Align::kLeft},
                              {"fwd%", Align::kRight},
                              {"rev%", Align::kRight},
                              {"rep.fwd", Align::kRight},
                              {"act.fwd", Align::kRight},
                              {"diff", Align::kRight},
                              {"rep.rev", Align::kRight},
                              {"act.rev", Align::kRight},
                              {"diff", Align::kRight}}};
  for (const auto& row : rows_) {
    const bool two_way = row.fwd_p.has_value();
    t.row({row.test, two_way ? fixed(*row.fwd_p * 100, 0) : "-",
           row.rev_p.has_value() ? fixed(*row.rev_p * 100, 0) : "-",
           two_way ? integer(row.cmp.reported_fwd) : "-",
           two_way ? integer(row.cmp.actual_fwd) : "-",
           two_way ? integer(row.cmp.reported_fwd - row.cmp.actual_fwd) : "-",
           integer(row.cmp.reported_rev), integer(row.cmp.actual_rev),
           integer(row.cmp.reported_rev - row.cmp.actual_rev)});
  }
  return t;
}

void ValidationReport::emit_jsonl(JsonlWriter& out, int samples_per_two_way_test) const {
  for (const auto& row : rows_) {
    Json j = Json::object();
    j.set("type", "row");
    j.set("report", "validation");
    j.set("test", row.test);
    if (row.fwd_p.has_value()) j.set("fwd_p", *row.fwd_p);
    if (row.rev_p.has_value()) j.set("rev_p", *row.rev_p);
    j.set("admissible", row.admissible);
    j.set("reported_fwd", row.cmp.reported_fwd);
    j.set("actual_fwd", row.cmp.actual_fwd);
    j.set("fwd_mismatches", row.cmp.fwd_mismatches);
    j.set("reported_rev", row.cmp.reported_rev);
    j.set("actual_rev", row.cmp.actual_rev);
    j.set("rev_mismatches", row.cmp.rev_mismatches);
    j.set("verified_samples", row.cmp.verified_samples);
    out.write(j);
  }
  const Summary s = summary(samples_per_two_way_test);
  Json j = Json::object();
  j.set("type", "summary");
  j.set("report", "validation");
  j.set("tests_run", s.tests_run);
  j.set("fwd_discrepant_tests", s.fwd_discrepant_tests);
  j.set("rev_discrepant_tests", s.rev_discrepant_tests);
  j.set("total_samples", s.total_samples);
  j.set("mismatched_samples", s.mismatched_samples);
  if (const auto confirmed = s.confirmed_fraction()) j.set("confirmed_fraction", *confirmed);
  out.write(j);
}

}  // namespace reorder::report
