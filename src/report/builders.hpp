// Report builders for the paper's evaluation artifacts (§IV). Each
// builder owns the data one figure/table family is derived from and
// renders it two ways: an aligned human table (Table) and a JSONL record
// stream (one {"type":"row",...} object per table row, then one
// {"type":"summary",...} object). The benches feed them and print;
// nothing in bench/ hand-rolls a table loop any more.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/ground_truth.hpp"
#include "core/metrics.hpp"
#include "metrics/engine.hpp"
#include "report/jsonl.hpp"
#include "report/table.hpp"
#include "stats/ecdf.hpp"

namespace reorder::report {

/// Figure-5 family: the CDF of per-path reordering rates, forward and
/// reverse, evaluated at fixed thresholds.
class RateCdfReport {
 public:
  explicit RateCdfReport(std::vector<double> thresholds) : thresholds_{std::move(thresholds)} {}

  /// Records one measured path. Pass the pooled per-path rates; a path
  /// with no usable samples in a direction contributes rate 0 there (it
  /// was measured, not absent — matching the paper's per-path pooling).
  void add_path(double forward_rate, double reverse_rate);

  /// Records one measured path straight from an engine snapshot, pooling
  /// the named tests' aggregates (the paper's per-path summary). With an
  /// empty `tests`, pools every test measured against the target.
  void add_target(const metrics::MetricEngine& engine, const std::string& target,
                  const std::vector<std::string>& tests = {});

  std::size_t paths() const { return paths_; }
  int paths_with_reordering() const { return paths_with_reordering_; }
  const stats::Ecdf& forward() const { return forward_; }
  const stats::Ecdf& reverse() const { return reverse_; }

  Table table() const;
  void emit_jsonl(JsonlWriter& out) const;

 private:
  std::vector<double> thresholds_;
  stats::Ecdf forward_;
  stats::Ecdf reverse_;
  std::size_t paths_{0};
  int paths_with_reordering_{0};
};

/// Figure-7 family: reordering rate vs inter-packet gap (the §IV-C
/// time-domain profile).
class TimeDomainReport {
 public:
  explicit TimeDomainReport(core::TimeDomainProfile profile, int table_every_us = 1)
      : profile_{std::move(profile)}, table_every_us_{table_every_us} {}

  const core::TimeDomainProfile& profile() const { return profile_; }

  /// gap(us) | samples | reordered | rate — decimated to every
  /// `table_every_us` microseconds for readability; JSONL is never
  /// decimated.
  Table table() const;
  void emit_jsonl(JsonlWriter& out) const;

 private:
  core::TimeDomainProfile profile_;
  int table_every_us_;
};

/// §IV-B family: pairwise test-consistency percentages (the fraction of
/// hosts where the paired-difference null hypothesis survived).
class PairDifferenceReport {
 public:
  struct Pair {
    std::string test_a;
    std::string test_b;
    int fwd_supported{0};
    int fwd_total{0};
    int rev_supported{0};
    int rev_total{0};
  };

  /// Accumulates one host-level paired verdict for (a, b).
  void add(const std::string& test_a, const std::string& test_b, bool forward,
           bool null_supported);

  /// Runs the engine's paired comparison of (a, b) on one target and
  /// records the verdict. Returns false (recording nothing) when fewer
  /// than two usable pairs exist.
  bool add_compare(const metrics::MetricEngine& engine, const std::string& target,
                   const std::string& test_a, const std::string& test_b, bool forward,
                   double confidence = 0.999);

  const std::vector<Pair>& pairs() const { return pairs_; }

  /// test pair | fwd null-ok % | rev null-ok % ("-" with no data).
  Table table() const;
  void emit_jsonl(JsonlWriter& out) const;

 private:
  Pair& pair(const std::string& test_a, const std::string& test_b);
  std::vector<Pair> pairs_;  // first-seen order
};

/// §IV-A family: the controlled ground-truth validation grid.
class ValidationReport {
 public:
  struct Row {
    std::string test;
    std::optional<double> fwd_p;  ///< configured forward swap rate
    std::optional<double> rev_p;
    core::TruthComparison cmp;
    bool admissible{true};
  };

  void add(Row row);
  const std::vector<Row>& rows() const { return rows_; }

  struct Summary {
    int tests_run{0};
    int fwd_discrepant_tests{0};
    int rev_discrepant_tests{0};
    long total_samples{0};
    long mismatched_samples{0};
    /// Fraction of verified samples the traces confirmed; empty with none.
    std::optional<double> confirmed_fraction() const;
  };
  /// Recomputed over the accumulated rows. `samples_per_two_way_test`
  /// reproduces the paper's accounting: two-way tests contribute
  /// 2 x samples to the denominator, one-way tests their verified count.
  Summary summary(int samples_per_two_way_test) const;

  Table table() const;
  void emit_jsonl(JsonlWriter& out, int samples_per_two_way_test) const;

 private:
  std::vector<Row> rows_;
};

}  // namespace reorder::report
