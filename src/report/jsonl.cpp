#include "report/jsonl.hpp"

#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/fault_injector.hpp"

namespace reorder::report {

void JsonlWriter::write(const Json& value) {
  if (faults_ != nullptr) {
    faults_->maybe_throw(fault_site_, util::FaultInjector::Mode::kSinkWriteFailure);
  }
  out_ << value.dump() << '\n';
  if (!out_) {
    throw std::runtime_error{"JsonlWriter: stream write failed after " +
                             std::to_string(lines_) + " lines"};
  }
  ++lines_;
}

void JsonlWriter::set_fault_injector(util::FaultInjector* faults, std::string site) {
  faults_ = faults;
  fault_site_ = std::move(site);
}

AtomicJsonlFile::AtomicJsonlFile(std::string path)
    : path_{std::move(path)},
      tmp_path_{path_ + ".tmp"},
      out_{std::make_unique<std::ofstream>(tmp_path_, std::ios::trunc)},
      writer_{*out_} {
  if (!*out_) {
    throw std::runtime_error{"AtomicJsonlFile: cannot open " + tmp_path_};
  }
}

AtomicJsonlFile::~AtomicJsonlFile() {
  if (committed_) return;
  out_.reset();  // close before unlink (Windows-friendly ordering)
  std::remove(tmp_path_.c_str());
}

void AtomicJsonlFile::commit() {
  if (committed_) {
    throw std::runtime_error{"AtomicJsonlFile: already committed " + path_};
  }
  auto& file = static_cast<std::ofstream&>(*out_);
  file.flush();
  if (!file) {
    throw std::runtime_error{"AtomicJsonlFile: flush failed for " + tmp_path_};
  }
  file.close();
  if (file.fail()) {
    throw std::runtime_error{"AtomicJsonlFile: close failed for " + tmp_path_};
  }
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    throw std::runtime_error{"AtomicJsonlFile: rename " + tmp_path_ + " -> " + path_ +
                             " failed"};
  }
  committed_ = true;
}

std::vector<Json> read_jsonl(std::istream& in) {
  std::vector<Json> out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    auto v = Json::parse(line);
    if (!v) {
      throw std::runtime_error{"read_jsonl: malformed JSON on line " + std::to_string(line_no)};
    }
    out.push_back(std::move(*v));
  }
  return out;
}

std::vector<Json> read_jsonl_text(std::string_view text) {
  std::istringstream in{std::string{text}};
  return read_jsonl(in);
}

std::vector<Json> read_jsonl_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    throw std::runtime_error{"read_jsonl_file: cannot open " + path};
  }
  return read_jsonl(in);
}

RecoveredJsonl read_jsonl_file_prefix(const std::string& path) {
  RecoveredJsonl out;
  std::ifstream in{path};
  if (!in) return out;  // no file yet: nothing recorded, nothing torn
  std::string line;
  bool torn = false;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    auto v = Json::parse(line);
    if (!v) {
      // First malformed line: everything from here on is the torn tail.
      torn = true;
      break;
    }
    out.records.push_back(std::move(*v));
  }
  if (torn) {
    out.dropped_lines = 1;
    while (std::getline(in, line)) ++out.dropped_lines;
  }
  return out;
}

}  // namespace reorder::report
