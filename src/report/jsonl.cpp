#include "report/jsonl.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace reorder::report {

void JsonlWriter::write(const Json& value) {
  out_ << value.dump() << '\n';
  ++lines_;
}

std::vector<Json> read_jsonl(std::istream& in) {
  std::vector<Json> out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    auto v = Json::parse(line);
    if (!v) {
      throw std::runtime_error{"read_jsonl: malformed JSON on line " + std::to_string(line_no)};
    }
    out.push_back(std::move(*v));
  }
  return out;
}

std::vector<Json> read_jsonl_text(std::string_view text) {
  std::istringstream in{std::string{text}};
  return read_jsonl(in);
}

}  // namespace reorder::report
