#include "report/sinks.hpp"

namespace reorder::report {

Json survey_event_json(const char* type, const core::SurveyEvent& e) {
  Json j = Json::object();
  j.set("type", type);
  j.set("targets", e.targets);
  j.set("rounds", e.rounds);
  j.set("measurements", e.measurements);
  j.set("at_ns", e.at.ns());
  if (std::string_view{type} == "survey_end") {
    // The fleet-accounting tail: `targets` above counts participants;
    // degraded runs name their absentees so participants + failed_targets
    // always account for the configured fleet.
    j.set("degraded", e.degraded);
    j.set("failed_shards", e.failed_shards);
    Json failed = Json::array();
    for (const auto& name : e.failed_targets) failed.push(name);
    j.set("failed_targets", std::move(failed));
  }
  return j;
}

Json to_json(const core::ReorderEstimate& estimate) {
  Json j = Json::object();
  j.set("in_order", estimate.in_order);
  j.set("reordered", estimate.reordered);
  j.set("ambiguous", estimate.ambiguous);
  j.set("lost", estimate.lost);
  return j;
}

Json to_json(const core::SampleEvent& e) {
  Json j = Json::object();
  j.set("type", "sample");
  j.set("target", e.target);
  j.set("test", e.test);
  j.set("measurement", e.measurement_index);
  j.set("sample", e.sample_index);
  j.set("fwd", core::to_string(e.sample.forward));
  j.set("rev", core::to_string(e.sample.reverse));
  j.set("gap_ns", e.sample.gap.ns());
  j.set("started_ns", e.sample.started.ns());
  j.set("completed_ns", e.sample.completed.ns());
  return j;
}

Json to_json(const core::MeasurementEvent& e) {
  Json j = Json::object();
  j.set("type", "measurement");
  j.set("target", e.target);
  j.set("test", e.test);
  j.set("measurement", e.measurement_index);
  j.set("at_ns", e.at.ns());
  j.set("admissible", e.result.admissible);
  j.set("samples", e.result.samples.size());
  j.set("note", e.result.note);
  j.set("fwd", to_json(e.result.forward));
  j.set("rev", to_json(e.result.reverse));
  return j;
}

core::ReorderEstimate estimate_from_json(const Json& j) {
  core::ReorderEstimate e;
  e.in_order = static_cast<std::uint64_t>(j.at("in_order").as_int());
  e.reordered = static_cast<std::uint64_t>(j.at("reordered").as_int());
  e.ambiguous = static_cast<std::uint64_t>(j.at("ambiguous").as_int());
  e.lost = static_cast<std::uint64_t>(j.at("lost").as_int());
  return e;
}

void JsonlResultSink::on_survey_begin(const core::SurveyEvent& e) {
  if (options_.lifecycle) out_.write(survey_event_json("survey_begin", e));
}

void JsonlResultSink::on_sample(const core::SampleEvent& e) {
  if (options_.samples) out_.write(to_json(e));
}

void JsonlResultSink::on_measurement(const core::MeasurementEvent& e) {
  if (options_.measurements) out_.write(to_json(e));
}

void JsonlResultSink::on_survey_end(const core::SurveyEvent& e) {
  if (options_.lifecycle) out_.write(survey_event_json("survey_end", e));
}

void NarratingSink::on_survey_begin(const core::SurveyEvent& e) {
  std::fprintf(out_, "survey begins: %zu targets x %d rounds\n", e.targets, e.rounds);
  if (policy_.every != 0 && policy_.first != 0) {
    std::fprintf(out_, "completions (first %zu, then every %zu):\n", policy_.first,
                 policy_.every);
  } else if (policy_.every != 0) {
    std::fprintf(out_, "completions (every %zu):\n", policy_.every);
  } else if (policy_.first != 0) {
    std::fprintf(out_, "first completions (note the targets interleaving):\n");
  }
}

void NarratingSink::on_measurement(const core::MeasurementEvent& e) {
  if (!tick()) return;
  std::fprintf(out_, "  t=%8.3fs  %-8.*s %.*s\n", e.at.seconds_f(),
               static_cast<int>(e.target.size()), e.target.data(),
               static_cast<int>(e.test.size()), e.test.data());
}

void NarratingSink::on_survey_end(const core::SurveyEvent& e) {
  // Deliberately quiet policies ({0,0}) skip the truncation marker too.
  if (narrated_ < seen_ && (policy_.first != 0 || policy_.every != 0)) {
    std::fprintf(out_, "  ... (%zu of %zu completions narrated)\n", narrated_, seen_);
  }
  std::fprintf(out_, "survey complete: %zu measurements by t=%.1fs\n\n", e.measurements,
               e.at.seconds_f());
}

}  // namespace reorder::report
