// JSON Lines emission and ingestion: one compact JSON value per line —
// the machine-readable side of every bench artifact (BENCH_*.jsonl) and
// the wire format of the streaming JsonlResultSink.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "report/json.hpp"

namespace reorder::util {
class FaultInjector;
}

namespace reorder::report {

/// Writes one value per line to a caller-owned stream. Stream failure is
/// an error, not a silent truncation: write() checks the stream after
/// every line and throws std::runtime_error when it went bad.
class JsonlWriter {
 public:
  explicit JsonlWriter(std::ostream& out) : out_{out} {}

  void write(const Json& value);
  std::size_t lines_written() const { return lines_; }

  /// Arms the emit path's fault point: every write() first probes `site`
  /// for a kSinkWriteFailure plan (not owned; pass nullptr to disarm).
  /// How the failure-policy tests make "the sink write failed" happen on
  /// demand, deterministically.
  void set_fault_injector(util::FaultInjector* faults, std::string site = "jsonl/write");

 private:
  std::ostream& out_;
  std::size_t lines_{0};
  util::FaultInjector* faults_{nullptr};
  std::string fault_site_;
};

/// A JSONL artifact written crash-safely: lines stream into `<path>.tmp`,
/// and only commit() — flush, close, then atomically rename onto `path` —
/// publishes them. A process killed mid-write leaves at most a stale
/// `.tmp` behind; the destination either keeps its previous content or
/// holds one complete, parseable stream. Readers therefore never see the
/// half-written artifact that read_jsonl would reject at its torn last
/// line. An AtomicJsonlFile destroyed uncommitted removes its tmp.
class AtomicJsonlFile {
 public:
  explicit AtomicJsonlFile(std::string path);
  ~AtomicJsonlFile();

  AtomicJsonlFile(const AtomicJsonlFile&) = delete;
  AtomicJsonlFile& operator=(const AtomicJsonlFile&) = delete;

  JsonlWriter& writer() { return writer_; }
  const std::string& path() const { return path_; }
  const std::string& tmp_path() const { return tmp_path_; }

  /// Flushes, closes, and renames the tmp file onto `path`. Throws
  /// std::runtime_error when any step fails (the tmp file is kept for
  /// post-mortem in that case). At most one commit per instance.
  void commit();
  bool committed() const { return committed_; }

 private:
  std::string path_;
  std::string tmp_path_;
  std::unique_ptr<std::ostream> out_;
  JsonlWriter writer_;
  bool committed_{false};
};

/// Parses a JSONL stream; blank lines are skipped, malformed lines throw
/// std::runtime_error (with the 1-based line number).
std::vector<Json> read_jsonl(std::istream& in);
std::vector<Json> read_jsonl_text(std::string_view text);

/// read_jsonl over a file. Throws std::runtime_error when the file cannot
/// be opened.
std::vector<Json> read_jsonl_file(const std::string& path);

/// Lenient sibling for recovery paths: parses the leading well-formed
/// prefix of a JSONL file and reports how many trailing lines were
/// dropped (a torn tail from a killed writer parses up to the tear).
/// Missing file = empty content, zero dropped.
struct RecoveredJsonl {
  std::vector<Json> records;
  std::size_t dropped_lines{0};
};
RecoveredJsonl read_jsonl_file_prefix(const std::string& path);

}  // namespace reorder::report
