// JSON Lines emission and ingestion: one compact JSON value per line —
// the machine-readable side of every bench artifact (BENCH_*.jsonl) and
// the wire format of the streaming JsonlResultSink.
#pragma once

#include <iosfwd>
#include <vector>

#include "report/json.hpp"

namespace reorder::report {

/// Writes one value per line to a caller-owned stream.
class JsonlWriter {
 public:
  explicit JsonlWriter(std::ostream& out) : out_{out} {}

  void write(const Json& value);
  std::size_t lines_written() const { return lines_; }

 private:
  std::ostream& out_;
  std::size_t lines_{0};
};

/// Parses a JSONL stream; blank lines are skipped, malformed lines throw
/// std::runtime_error (with the 1-based line number).
std::vector<Json> read_jsonl(std::istream& in);
std::vector<Json> read_jsonl_text(std::string_view text);

}  // namespace reorder::report
