// RFC-4180-style CSV emission (quoting only when needed).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace reorder::report {

/// Quotes a field if it contains a comma, quote or newline.
std::string csv_escape(std::string_view field);

/// Writes one comma-separated, newline-terminated row.
void write_csv_row(std::ostream& out, const std::vector<std::string>& fields);

}  // namespace reorder::report
