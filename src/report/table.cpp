#include "report/table.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "report/csv.hpp"

namespace reorder::report {

Table::Table(std::vector<Column> columns) : columns_{std::move(columns)} {
  if (columns_.empty()) throw std::invalid_argument{"Table: needs at least one column"};
}

Table Table::with_headers(std::vector<std::string> headers) {
  std::vector<Column> columns;
  columns.reserve(headers.size());
  for (std::size_t i = 0; i < headers.size(); ++i) {
    columns.push_back(Column{std::move(headers[i]), i == 0 ? Align::kLeft : Align::kRight});
  }
  return Table{std::move(columns)};
}

Table& Table::row(std::vector<std::string> cells) {
  if (cells.size() > columns_.size()) {
    throw std::invalid_argument{"Table: row has more cells than columns"};
  }
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].header.size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  std::string out;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      const std::string& cell = cells[c];
      const std::size_t pad = widths[c] - cell.size();
      if (c > 0) out += "  ";
      if (columns_[c].align == Align::kRight) out.append(pad, ' ');
      out += cell;
      // Trailing pad only matters between columns, not at line end.
      if (columns_[c].align == Align::kLeft && c + 1 < columns_.size()) out.append(pad, ' ');
    }
    out += '\n';
  };

  std::vector<std::string> headers;
  headers.reserve(columns_.size());
  for (const auto& col : columns_) headers.push_back(col.header);
  emit_row(headers);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w;
  out.append(total + 2 * (columns_.size() - 1), '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

void Table::print(std::FILE* out) const {
  const std::string rendered = to_string();
  std::fwrite(rendered.data(), 1, rendered.size(), out);
}

void Table::write_csv(std::ostream& out) const {
  std::vector<std::string> headers;
  headers.reserve(columns_.size());
  for (const auto& col : columns_) headers.push_back(col.header);
  write_csv_row(out, headers);
  for (const auto& row : rows_) write_csv_row(out, row);
}

std::string fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string signed_fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.*f", precision, v);
  return buf;
}

std::string percent(double fraction, int precision) {
  return fixed(100.0 * fraction, precision);
}

std::string integer(std::int64_t v) { return std::to_string(v); }

}  // namespace reorder::report
