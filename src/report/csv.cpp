#include "report/csv.hpp"

#include <ostream>

namespace reorder::report {

std::string csv_escape(std::string_view field) {
  const bool needs_quoting = field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quoting) return std::string{field};
  std::string out{"\""};
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void write_csv_row(std::ostream& out, const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out << ',';
    out << csv_escape(fields[i]);
  }
  out << '\n';
}

}  // namespace reorder::report
