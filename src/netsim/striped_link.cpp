#include "netsim/striped_link.hpp"

#include <utility>

namespace reorder::sim {

StripedLink::StripedLink(EventLoop& loop, StripedLinkConfig config, util::Rng rng)
    : loop_{loop}, config_{config}, rng_{rng}, lane_busy_until_(config.lanes) {}

void StripedLink::accept(tcpip::Packet pkt) {
  const std::size_t lane = next_lane_;
  next_lane_ = (next_lane_ + 1) % config_.lanes;

  const util::TimePoint now = loop_.now();
  // Residual backlog from our own traffic on this lane...
  util::TimePoint start = lane_busy_until_[lane] > now ? lane_busy_until_[lane] : now;
  // ...plus a fresh draw of background cross-traffic queued ahead of us.
  if (rng_.bernoulli(config_.contention_probability)) {
    const double backlog_bytes =
        config_.backlog_model == BacklogModel::kExponential
            ? rng_.exponential(config_.mean_backlog_bytes)
            : rng_.uniform(0.0, 2.0 * config_.mean_backlog_bytes);
    const double backlog_seconds =
        backlog_bytes * 8.0 / static_cast<double>(config_.lane_bandwidth_bps);
    start += util::Duration::from_seconds_f(backlog_seconds);
  }
  const double ser_seconds = static_cast<double>(pkt.wire_size()) * 8.0 /
                             static_cast<double>(config_.lane_bandwidth_bps);
  const util::TimePoint done = start + util::Duration::from_seconds_f(ser_seconds);
  lane_busy_until_[lane] = done;

  loop_.schedule_at(done + config_.propagation, [this, p = std::move(pkt)]() mutable {
    ++forwarded_;
    emit(std::move(p));
  });
}

}  // namespace reorder::sim
