// Basic path elements: a store-and-forward link (bandwidth + propagation +
// drop-tail queue), a fixed delay, uniform jitter, and Bernoulli loss.
#pragma once

#include <cstdint>

#include "netsim/event_loop.hpp"
#include "netsim/stage.hpp"
#include "util/random.hpp"
#include "util/time.hpp"

namespace reorder::sim {

/// Parameters for a point-to-point link.
struct LinkParams {
  /// Serialization rate in bits per second; 0 means infinitely fast.
  std::int64_t bandwidth_bps{100'000'000};
  util::Duration propagation{util::Duration::millis(5)};
  /// Drop-tail bound on packets queued awaiting serialization.
  std::size_t queue_limit_packets{256};
};

/// FIFO store-and-forward link. Never reorders; contributes serialization
/// delay (the effect behind the paper's §IV-C observation that 1500-byte
/// data packets see less reordering than 40-byte probe packets).
class LinkStage final : public Stage {
 public:
  LinkStage(EventLoop& loop, LinkParams params);

  void accept(tcpip::Packet pkt) override;
  std::string name() const override { return "link"; }

  /// Serialization time for `bytes` at this link's bandwidth.
  util::Duration serialization_time(std::size_t bytes) const;

  std::uint64_t forwarded() const { return forwarded_; }
  std::uint64_t dropped() const { return dropped_; }

 private:
  EventLoop& loop_;
  LinkParams params_;
  util::TimePoint busy_until_;
  std::size_t in_queue_{0};
  std::uint64_t forwarded_{0};
  std::uint64_t dropped_{0};
};

/// Adds a constant delay; order-preserving.
class DelayStage final : public Stage {
 public:
  DelayStage(EventLoop& loop, util::Duration delay) : loop_{loop}, delay_{delay} {}
  void accept(tcpip::Packet pkt) override;
  std::string name() const override { return "delay"; }

 private:
  EventLoop& loop_;
  util::Duration delay_;
};

/// Adds an independent uniform random delay in [lo, hi] per packet. This is
/// itself a (time-correlated) reordering process: two packets Δt apart swap
/// when the first draws a delay more than Δt larger than the second.
class JitterStage final : public Stage {
 public:
  JitterStage(EventLoop& loop, util::Duration lo, util::Duration hi, util::Rng rng)
      : loop_{loop}, lo_{lo}, hi_{hi}, rng_{rng} {}
  void accept(tcpip::Packet pkt) override;
  std::string name() const override { return "jitter"; }

 private:
  EventLoop& loop_;
  util::Duration lo_;
  util::Duration hi_;
  util::Rng rng_;
};

/// Drops each packet independently with probability p.
class LossStage final : public Stage {
 public:
  LossStage(double p, util::Rng rng) : p_{p}, rng_{rng} {}
  void accept(tcpip::Packet pkt) override;
  std::string name() const override { return "loss"; }

  std::uint64_t dropped() const { return dropped_; }

 private:
  double p_;
  util::Rng rng_;
  std::uint64_t dropped_{0};
};

}  // namespace reorder::sim
