#include "netsim/event_loop.hpp"

#include <utility>

namespace reorder::sim {

std::uint64_t EventLoop::push(util::TimePoint at, std::function<void()> fn) {
  if (at < now_) at = now_;
  const Key key{at.ns(), next_seq_++};
  const std::uint64_t token = next_token_++;
  queue_.emplace(key, std::make_pair(token, std::move(fn)));
  by_token_.emplace(token, key);
  return token;
}

std::uint64_t EventLoop::schedule(util::Duration delay, std::function<void()> fn) {
  if (delay.is_negative()) delay = util::Duration::nanos(0);
  return push(now_ + delay, std::move(fn));
}

std::uint64_t EventLoop::schedule_at(util::TimePoint at, std::function<void()> fn) {
  return push(at, std::move(fn));
}

void EventLoop::cancel(std::uint64_t token) {
  const auto it = by_token_.find(token);
  if (it == by_token_.end()) return;
  queue_.erase(it->second);
  by_token_.erase(it);
}

bool EventLoop::pop_and_run() {
  if (queue_.empty()) return false;
  auto it = queue_.begin();
  now_ = util::TimePoint::from_ns(it->first.at_ns);
  auto [token, fn] = std::move(it->second);
  by_token_.erase(token);
  queue_.erase(it);
  ++executed_;
  fn();
  return true;
}

std::uint64_t EventLoop::run() {
  std::uint64_t n = 0;
  while (pop_and_run()) ++n;
  return n;
}

std::uint64_t EventLoop::run_until(util::TimePoint deadline) {
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.begin()->first.at_ns <= deadline.ns()) {
    pop_and_run();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

bool EventLoop::run_while(util::TimePoint deadline, const std::function<bool()>& keep_going) {
  while (keep_going()) {
    if (queue_.empty()) return false;
    if (queue_.begin()->first.at_ns > deadline.ns()) {
      now_ = deadline;
      return false;
    }
    pop_and_run();
  }
  return true;
}

}  // namespace reorder::sim
