#include "netsim/event_loop.hpp"

#include <algorithm>
#include <utility>

namespace reorder::sim {

// --- indexed-heap internals ------------------------------------------------

std::uint32_t EventLoop::alloc_slot() {
  if (free_head_ != kNilSlot) {
    const std::uint32_t index = free_head_;
    free_head_ = meta_[index].next_free;
    return index;
  }
  meta_.emplace_back();
  fns_.emplace_back();
  return static_cast<std::uint32_t>(meta_.size() - 1);
}

void EventLoop::free_slot(std::uint32_t index) {
  fns_[index].reset();
  SlotMeta& meta = meta_[index];
  meta.live_seq = 0;  // invalidates any heap entry still pointing here
  meta.next_free = free_head_;
  free_head_ = index;
}

// Both sift directions move a hole instead of swapping entries: one store
// per level rather than three.
void EventLoop::heap_push(HeapEntry entry) {
  heap_.push_back(entry);  // grows storage; the value is overwritten below
  std::size_t hole = heap_.size() - 1;
  while (hole > 0) {
    const std::size_t parent = (hole - 1) / 4;
    if (!entry_less(entry, heap_[parent])) break;
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  heap_[hole] = entry;
}

EventLoop::HeapEntry EventLoop::heap_pop_top() {
  const HeapEntry top = heap_.front();
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return top;
  // Bottom-up sift: walk the hole to a leaf along min-children without
  // comparing against `last` (the tail entry is near-maximal, so the
  // textbook per-level comparison almost never terminates early), then
  // bubble `last` up from the leaf — usually zero or one step.
  std::size_t hole = 0;
  for (;;) {
    const std::size_t first_child = 4 * hole + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t last_child = std::min(first_child + 4, n);
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (entry_less(heap_[c], heap_[best])) best = c;
    }
    heap_[hole] = heap_[best];
    hole = best;
  }
  const auto key = key_of(last);
  while (hole > 0) {
    const std::size_t parent = (hole - 1) / 4;
    if (key_of(heap_[parent]) <= key) break;
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  heap_[hole] = last;
  return top;
}

void EventLoop::purge_top() {
  while (!heap_.empty() &&
         meta_[heap_.front().seq_slot & kSlotMask].live_seq !=
             (heap_.front().seq_slot >> kSlotBits)) {
    heap_pop_top();
  }
}

// --- scheduling ------------------------------------------------------------

std::uint64_t EventLoop::push(util::TimePoint at, tcpip::Callback&& fn) {
  if (at < now_) at = now_;
  if (policy_ == QueuePolicy::kReferenceMap) {
    const Key key{at.ns(), next_seq_++};
    ++live_;
    const std::uint64_t token = next_token_++;
    map_queue_.emplace(key, std::make_pair(token, std::move(fn)));
    by_token_.emplace(token, key);
    return token;
  }
  const std::uint32_t slot = alloc_slot();
  fns_[slot] = std::move(fn);
  return arm_slot(at, slot);
}

std::uint64_t EventLoop::schedule(util::Duration delay, tcpip::Callback fn) {
  if (delay.is_negative()) delay = util::Duration::nanos(0);
  return push(now_ + delay, std::move(fn));
}

std::uint64_t EventLoop::schedule_at(util::TimePoint at, tcpip::Callback fn) {
  return push(at, std::move(fn));
}

void EventLoop::cancel(std::uint64_t token) {
  if (policy_ == QueuePolicy::kReferenceMap) {
    const auto it = by_token_.find(token);
    if (it == by_token_.end()) return;
    map_queue_.erase(it->second);
    by_token_.erase(it);
    --live_;
    return;
  }
  const auto slot = static_cast<std::uint32_t>(token & kSlotMask);
  const std::uint64_t seq = token >> kSlotBits;
  // seq 0 never names an event (free slots hold live_seq == 0, and real
  // seqs start at 1) — without this guard, cancelling the "no timer
  // armed" sentinel 0 would double-free slot 0.
  if (seq == 0 || slot >= meta_.size() || meta_[slot].live_seq != seq) return;
  // Lazy cancellation: release the capture and retire the slot now; the
  // heap entry goes stale (live_seq mismatch) and is skipped on pop.
  free_slot(slot);
  --live_;
}

bool EventLoop::pop_and_run() {
  if (policy_ == QueuePolicy::kReferenceMap) {
    if (map_queue_.empty()) return false;
    auto it = map_queue_.begin();
    now_ = util::TimePoint::from_ns(it->first.at_ns);
    const std::uint64_t seq = it->first.seq;
    auto [token, fn] = std::move(it->second);
    by_token_.erase(token);
    map_queue_.erase(it);
    --live_;
    ++executed_;
    if (hook_) hook_(now_, seq);
    fn();
    return true;
  }
  for (;;) {
    if (heap_.empty()) return false;
    const HeapEntry top = heap_pop_top();
    const auto slot = static_cast<std::uint32_t>(top.seq_slot & kSlotMask);
    const std::uint64_t seq = top.seq_slot >> kSlotBits;
    if (meta_[slot].live_seq != seq) continue;  // lazily cancelled
    now_ = util::TimePoint::from_ns(top.at_ns);
    tcpip::Callback fn = std::move(fns_[slot]);
    free_slot(slot);
    --live_;
    ++executed_;
    if (hook_) hook_(now_, seq);
    fn();
    return true;
  }
}

std::uint64_t EventLoop::run() {
  std::uint64_t n = 0;
  while (pop_and_run()) ++n;
  return n;
}

std::uint64_t EventLoop::run_until(util::TimePoint deadline) {
  std::uint64_t n = 0;
  for (;;) {
    std::int64_t next_at;
    if (policy_ == QueuePolicy::kReferenceMap) {
      if (map_queue_.empty()) break;
      next_at = map_queue_.begin()->first.at_ns;
    } else {
      purge_top();
      if (heap_.empty()) break;
      next_at = heap_.front().at_ns;
    }
    if (next_at > deadline.ns()) break;
    if (pop_and_run()) ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

bool EventLoop::run_while(util::TimePoint deadline, const std::function<bool()>& keep_going) {
  while (keep_going()) {
    std::int64_t next_at;
    if (policy_ == QueuePolicy::kReferenceMap) {
      if (map_queue_.empty()) {
        // Queue drained before the deadline: the clock still advances to
        // the deadline, exactly as run_until's would.
        if (now_ < deadline) now_ = deadline;
        return false;
      }
      next_at = map_queue_.begin()->first.at_ns;
    } else {
      purge_top();
      if (heap_.empty()) {
        if (now_ < deadline) now_ = deadline;
        return false;
      }
      next_at = heap_.front().at_ns;
    }
    if (next_at > deadline.ns()) {
      now_ = deadline;
      return false;
    }
    pop_and_run();
  }
  return true;
}

}  // namespace reorder::sim
