// A unidirectional chain of stages with an entry sink and a terminal sink.
// Topologies are built from two Paths (forward and reverse) plus hosts.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "netsim/stage.hpp"

namespace reorder::sim {

/// Owns an ordered chain of stages. Build with emplace<T>(...), then call
/// terminate() with the destination's sink; entry() injects packets.
class Path {
 public:
  Path() = default;

  Path(const Path&) = delete;
  Path& operator=(const Path&) = delete;

  /// Appends a stage constructed in place and returns a reference to it
  /// (so callers can keep handles for runtime control / counters).
  template <typename T, typename... Args>
  T& emplace(Args&&... args) {
    auto stage = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *stage;
    if (!stages_.empty()) {
      Stage* prev = stages_.back().get();
      prev->connect([&ref](tcpip::Packet pkt) { ref.accept(std::move(pkt)); });
    }
    stages_.push_back(std::move(stage));
    return ref;
  }

  /// Connects the last stage to the destination. With no stages the path
  /// is a wire: entry() forwards straight to the terminal sink.
  void terminate(PacketSink sink) {
    terminal_ = std::move(sink);
    if (!stages_.empty()) stages_.back()->connect(terminal_);
  }

  /// The sink feeding this path's first element.
  PacketSink entry() {
    if (stages_.empty()) {
      return [this](tcpip::Packet pkt) {
        if (terminal_) terminal_(std::move(pkt));
      };
    }
    Stage* first = stages_.front().get();
    return [first](tcpip::Packet pkt) { first->accept(std::move(pkt)); };
  }

  std::size_t stage_count() const { return stages_.size(); }

  /// "link > swap-shaper > link" — for topology dumps.
  std::string describe() const {
    std::string out;
    for (const auto& s : stages_) {
      if (!out.empty()) out += " > ";
      out += s->name();
    }
    return out.empty() ? "wire" : out;
  }

 private:
  std::vector<std::unique_ptr<Stage>> stages_;
  PacketSink terminal_;
};

}  // namespace reorder::sim
