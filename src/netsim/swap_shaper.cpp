#include "netsim/swap_shaper.hpp"

#include <utility>

namespace reorder::sim {

SwapShaper::SwapShaper(EventLoop& loop, SwapShaperConfig config, util::Rng rng)
    : loop_{loop}, config_{config}, rng_{rng} {}

void SwapShaper::accept(tcpip::Packet pkt) {
  ++packets_seen_;
  if (held_.has_value()) {
    // Successor arrived: emit it first, then the held packet — the pair is
    // exchanged. A held packet is never held twice.
    loop_.cancel(hold_token_);
    hold_token_ = 0;
    tcpip::Packet first = std::move(pkt);
    tcpip::Packet second = std::move(*held_);
    held_.reset();
    ++swaps_completed_;
    emit(std::move(first));
    emit(std::move(second));
    return;
  }
  if (rng_.bernoulli(config_.swap_probability)) {
    held_ = std::move(pkt);
    hold_token_ = loop_.schedule(config_.max_hold, [this] { release_held(); });
    return;
  }
  emit(std::move(pkt));
}

void SwapShaper::release_held() {
  if (!held_.has_value()) return;
  ++holds_timed_out_;
  hold_token_ = 0;
  tcpip::Packet p = std::move(*held_);
  held_.reset();
  emit(std::move(p));
}

}  // namespace reorder::sim
