// Transparent per-flow load balancer (paper Fig. 3). All backends share the
// balancer's virtual IP; the balancer hashes the TCP four-tuple so every
// packet of a flow reaches the same backend, but *different connections*
// (different source ports) land on different machines with independent
// IPID counters — which is exactly what silently breaks the dual-
// connection test and what the SYN test is designed to survive.
#pragma once

#include <cstdint>
#include <vector>

#include "tcpip/host.hpp"
#include "tcpip/packet.hpp"

namespace reorder::sim {

class LoadBalancer {
 public:
  /// `backends` must outlive the balancer and be configured with the VIP
  /// as their own address (transparent balancing).
  LoadBalancer(std::vector<tcpip::Host*> backends, std::uint64_t hash_salt = 0x5bd1e995u);

  /// Forwards one packet to the flow's backend.
  void receive(const tcpip::Packet& pkt);

  /// Which backend a four-tuple maps to (exposed for tests).
  std::size_t backend_index(const tcpip::Packet& pkt) const;

  std::uint64_t forwarded_to(std::size_t backend) const { return per_backend_.at(backend); }
  std::size_t backend_count() const { return backends_.size(); }

 private:
  std::vector<tcpip::Host*> backends_;
  std::uint64_t salt_;
  std::vector<std::uint64_t> per_backend_;
};

}  // namespace reorder::sim
