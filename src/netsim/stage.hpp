// Unidirectional packet-processing stages. A Path composes stages into a
// chain; each stage transforms timing/ordering/survival of the packets that
// flow through it. All reordering processes in the simulator are stages.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "tcpip/packet.hpp"

namespace reorder::sim {

/// Downstream consumer of packets.
using PacketSink = std::function<void(tcpip::Packet)>;

/// Base class for path elements. Stages are connected in a fixed order at
/// topology-build time and are not thread-safe (the simulator is
/// single-threaded by design).
class Stage {
 public:
  virtual ~Stage() = default;

  /// Ingests one packet. Implementations either emit() it (possibly later
  /// via the event loop) or drop it.
  virtual void accept(tcpip::Packet pkt) = 0;

  /// Wires the downstream sink; must be called before traffic flows.
  void connect(PacketSink next) { next_ = std::move(next); }

  /// Diagnostic name for topology dumps.
  virtual std::string name() const = 0;

 protected:
  /// Forwards a packet downstream. No-op when unconnected (topology under
  /// construction), which keeps partially built paths safe.
  void emit(tcpip::Packet pkt) {
    if (next_) next_(std::move(pkt));
  }

 private:
  PacketSink next_;
};

}  // namespace reorder::sim
