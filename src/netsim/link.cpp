#include "netsim/link.hpp"

#include <utility>

namespace reorder::sim {

LinkStage::LinkStage(EventLoop& loop, LinkParams params) : loop_{loop}, params_{params} {}

util::Duration LinkStage::serialization_time(std::size_t bytes) const {
  if (params_.bandwidth_bps <= 0) return util::Duration::nanos(0);
  const double seconds =
      static_cast<double>(bytes) * 8.0 / static_cast<double>(params_.bandwidth_bps);
  return util::Duration::from_seconds_f(seconds);
}

void LinkStage::accept(tcpip::Packet pkt) {
  if (in_queue_ >= params_.queue_limit_packets) {
    ++dropped_;
    return;
  }
  const util::TimePoint now = loop_.now();
  const util::Duration ser = serialization_time(pkt.wire_size());
  const util::TimePoint start = busy_until_ > now ? busy_until_ : now;
  const util::TimePoint done = start + ser;
  busy_until_ = done;
  ++in_queue_;
  const util::TimePoint arrive = done + params_.propagation;
  loop_.schedule_at(arrive, [this, p = std::move(pkt)]() mutable {
    --in_queue_;
    ++forwarded_;
    emit(std::move(p));
  });
}

void DelayStage::accept(tcpip::Packet pkt) {
  loop_.schedule(delay_, [this, p = std::move(pkt)]() mutable { emit(std::move(p)); });
}

void JitterStage::accept(tcpip::Packet pkt) {
  const auto extra = util::Duration::nanos(rng_.between(lo_.ns(), hi_.ns()));
  loop_.schedule(extra, [this, p = std::move(pkt)]() mutable { emit(std::move(p)); });
}

void LossStage::accept(tcpip::Packet pkt) {
  if (rng_.bernoulli(p_)) {
    ++dropped_;
    return;
  }
  emit(std::move(pkt));
}

}  // namespace reorder::sim
