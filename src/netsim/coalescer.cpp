#include "netsim/coalescer.hpp"

#include <algorithm>
#include <utility>

namespace reorder::sim {

InterruptCoalescer::InterruptCoalescer(EventLoop& loop, InterruptCoalescerConfig config,
                                       util::Rng rng)
    : loop_{loop}, config_{config}, rng_{rng} {
  if (config_.max_frames == 0) config_.max_frames = 1;
  held_.reserve(config_.max_frames);
}

void InterruptCoalescer::accept(tcpip::Packet pkt) {
  ++frames_seen_;
  held_.push_back(std::move(pkt));
  if (held_.size() >= config_.max_frames) {
    flush();
    return;
  }
  if (held_.size() == 1) {
    timer_token_ = loop_.schedule(config_.window, [this] {
      timer_token_ = 0;
      flush();
    });
  }
}

void InterruptCoalescer::flush() {
  if (timer_token_ != 0) {
    loop_.cancel(timer_token_);
    timer_token_ = 0;
  }
  if (held_.empty()) return;
  // Intra-burst local shuffle: each adjacent pair swaps independently and
  // a swapped pair is skipped, so no frame moves more than one position —
  // bounded displacement, the coalescing signature.
  for (std::size_t i = 0; i + 1 < held_.size();) {
    if (rng_.bernoulli(config_.shuffle_probability)) {
      std::swap(held_[i], held_[i + 1]);
      ++swaps_applied_;
      i += 2;
    } else {
      ++i;
    }
  }
  ++bursts_flushed_;
  max_burst_frames_ = std::max<std::uint64_t>(max_burst_frames_, held_.size());
  std::vector<tcpip::Packet> burst;
  burst.swap(held_);  // emit() may re-enter accept() downstream
  for (auto& frame : burst) emit(std::move(frame));
}

}  // namespace reorder::sim
