// NIC interrupt coalescing as a reordering process (arXiv 1008.4931):
// the receive path buffers frames and delivers them in bursts — on a
// frame-count threshold or a coalescing-window timer — and segmentation
// offload's per-burst reassembly can locally shuffle the frames it
// hands up. Packets never escape their burst (unlike striping, the
// displacement is bounded by the burst length), which is exactly the
// bursty, batched, locally-shuffled arrival shape the line-rate ingest
// path must chew through.
#pragma once

#include <cstdint>
#include <vector>

#include "netsim/event_loop.hpp"
#include "netsim/stage.hpp"
#include "util/random.hpp"

namespace reorder::sim {

struct InterruptCoalescerConfig {
  /// Deliver when this many frames are buffered.
  std::size_t max_frames{8};
  /// Deliver this long after the first buffered frame (the coalescing
  /// window), so a lull cannot wedge the tail of a burst.
  util::Duration window{util::Duration::micros(200)};
  /// Probability of swapping each adjacent pair within a delivered burst
  /// (a swapped pair is skipped, like the dummynet shaper's process).
  double shuffle_probability{0.25};
};

/// Buffers frames and emits them as locally-shuffled bursts.
class InterruptCoalescer final : public Stage {
 public:
  InterruptCoalescer(EventLoop& loop, InterruptCoalescerConfig config, util::Rng rng);

  void accept(tcpip::Packet pkt) override;
  std::string name() const override { return "interrupt-coalescer"; }

  std::uint64_t frames_seen() const { return frames_seen_; }
  std::uint64_t bursts_flushed() const { return bursts_flushed_; }
  std::uint64_t swaps_applied() const { return swaps_applied_; }
  std::uint64_t max_burst_frames() const { return max_burst_frames_; }

 private:
  void flush();

  EventLoop& loop_;
  InterruptCoalescerConfig config_;
  util::Rng rng_;
  std::vector<tcpip::Packet> held_;
  std::uint64_t timer_token_{0};
  std::uint64_t frames_seen_{0};
  std::uint64_t bursts_flushed_{0};
  std::uint64_t swaps_applied_{0};
  std::uint64_t max_burst_frames_{0};
};

}  // namespace reorder::sim
