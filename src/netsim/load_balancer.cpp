#include "netsim/load_balancer.hpp"

#include <stdexcept>

namespace reorder::sim {

namespace {
// 64-bit mix (splitmix64 finalizer) — a stand-in for the balancer ASIC's
// flow hash; quality only needs to be "spreads four-tuples".
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace

LoadBalancer::LoadBalancer(std::vector<tcpip::Host*> backends, std::uint64_t hash_salt)
    : backends_{std::move(backends)}, salt_{hash_salt}, per_backend_(backends_.size(), 0) {
  if (backends_.empty()) throw std::invalid_argument{"load balancer needs >= 1 backend"};
}

std::size_t LoadBalancer::backend_index(const tcpip::Packet& pkt) const {
  const std::uint64_t key = (static_cast<std::uint64_t>(pkt.ip.src.value()) << 32) |
                            (static_cast<std::uint64_t>(pkt.tcp.src_port) << 16) |
                            pkt.tcp.dst_port;
  return static_cast<std::size_t>(mix(key ^ salt_) % backends_.size());
}

void LoadBalancer::receive(const tcpip::Packet& pkt) {
  const std::size_t idx = backend_index(pkt);
  ++per_backend_[idx];
  backends_[idx]->receive(pkt);
}

}  // namespace reorder::sim
