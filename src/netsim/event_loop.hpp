// Discrete-event simulation core. Single-threaded; events run in timestamp
// order with FIFO tie-breaking, which makes every experiment bit-for-bit
// reproducible from its seeds.
//
// The scheduler is an indexed 4-ary min-heap keyed by (timestamp, seq) over
// a slot array with an intrusive freelist: steady-state schedule/pop/cancel
// touches no allocator once the heap and slot vectors have grown to the
// simulation's high-water mark. Callbacks are tcpip::Callback
// (util::InplaceFunction), so captures — including whole packets in flight
// between netsim stages — live inside the slot array. Tokens carry the
// event's sequence number over its slot index, so a token can always prove
// it still names the event it was issued for. Cancellation is lazy:
// cancel() invalidates the slot's live tag and drops the capture
// immediately; the orphaned heap entry is skipped when it surfaces.
//
// The previous std::map implementation is retained behind
// QueuePolicy::kReferenceMap as a differential-testing oracle (the
// order-equivalence suite replays every canonical scenario on both and
// asserts identical event sequences) and as the "before" side of the
// scheduling microbenchmarks.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <type_traits>
#include <utility>
#include <vector>

#include "tcpip/env.hpp"
#include "util/time.hpp"

namespace reorder::sim {

/// The simulation clock and scheduler. Implements tcpip::Environment so
/// protocol stacks can arm timers without knowing about the simulator.
class EventLoop final : public tcpip::Environment {
 public:
  enum class QueuePolicy {
    kIndexedHeap,   ///< allocation-free indexed heap (the default)
    kReferenceMap,  ///< original std::map queue, kept as a test oracle
  };

  EventLoop() = default;
  explicit EventLoop(QueuePolicy policy) : policy_{policy} {}

  util::TimePoint now() const override { return now_; }
  QueuePolicy policy() const { return policy_; }

  /// Schedules `fn` at now() + delay (delay clamped to >= 0).
  std::uint64_t schedule(util::Duration delay, tcpip::Callback fn) override;

  /// Schedules `fn` at an absolute time (clamped to >= now()).
  std::uint64_t schedule_at(util::TimePoint at, tcpip::Callback fn);

  /// Concrete-caller fast paths: the callable is constructed directly in
  /// its scheduler slot (no intermediate Callback move) and the call is
  /// non-virtual. Overload resolution prefers these for raw lambdas; code
  /// holding only a tcpip::Environment& still goes through the virtual.
  template <class F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, tcpip::Callback>)
  std::uint64_t schedule(util::Duration delay, F&& f) {
    if (delay.is_negative()) delay = util::Duration::nanos(0);
    return emplace_event(now_ + delay, std::forward<F>(f));
  }
  template <class F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, tcpip::Callback>)
  std::uint64_t schedule_at(util::TimePoint at, F&& f) {
    return emplace_event(at, std::forward<F>(f));
  }

  void cancel(std::uint64_t token) override;

  /// Runs every pending event (including ones scheduled while running).
  /// Returns the number of events executed.
  std::uint64_t run();

  /// Runs events with timestamp <= deadline; leaves now() at the deadline
  /// (or the last event time if the queue empties beyond it).
  std::uint64_t run_until(util::TimePoint deadline);

  /// Runs until `keep_going` returns false, the queue empties, or
  /// `deadline` passes; the clock never ends up before `deadline` unless
  /// stopped by the predicate. Returns true if stopped by request.
  bool run_while(util::TimePoint deadline, const std::function<bool()>& keep_going);

  /// Convenience: advance the clock by `d`, running due events.
  void advance(util::Duration d) { run_until(now_ + d); }

  bool empty() const { return live_ == 0; }
  std::size_t pending() const { return live_; }
  std::uint64_t events_executed() const { return executed_; }

  /// Observation hook for differential tests: called just before each event
  /// runs, with the event's timestamp and its scheduling sequence number.
  /// Two loops fed the same workload must produce identical hook streams.
  using ExecutedHook = std::function<void(util::TimePoint, std::uint64_t)>;
  void set_executed_hook(ExecutedHook hook) { hook_ = std::move(hook); }

 private:
  // --- indexed-heap queue ---
  //
  // A heap entry is 16 bytes: the timestamp plus one word packing the
  // scheduling sequence number (high 40 bits) over the slot index (low 24
  // bits). Ordering by the packed word equals ordering by seq — seq is
  // unique, so the tie-break never reaches the slot bits — and the sift
  // loops move a third less data than a naive (time, seq, slot, gen)
  // layout. 2^40 events per loop and 2^24 concurrent events are far above
  // anything a survey reaches (a week of continuous simulation at 1M
  // events/s stays under 2^40).
  struct HeapEntry {
    std::int64_t at_ns;
    std::uint64_t seq_slot;
  };
  static constexpr std::uint32_t kSlotBits = 24;
  static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1;
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;

  /// Per-slot bookkeeping lives apart from the fat callback array so the
  /// liveness checks and freelist walks stay in a dense, L1-resident
  /// vector. `live_seq` is the seq of the slot's current event, 0 when the
  /// slot is free or its event was cancelled (seq starts at 1) — the
  /// staleness check for lazy cancellation, and cancel's proof that a
  /// token still names the event it was issued for.
  struct SlotMeta {
    std::uint64_t live_seq{0};
    std::uint32_t next_free{kNilSlot};
  };

  /// (timestamp, seq_slot) as one 128-bit key: a single branch-friendly
  /// compare in the sift loops instead of two data-dependent ones.
  /// Timestamps are never negative (push clamps to now() and the epoch is
  /// 0), so the uint64 reinterpretation preserves order.
  static unsigned __int128 key_of(const HeapEntry& e) {
    return (static_cast<unsigned __int128>(static_cast<std::uint64_t>(e.at_ns)) << 64) |
           e.seq_slot;
  }
  static bool entry_less(const HeapEntry& a, const HeapEntry& b) {
    return key_of(a) < key_of(b);
  }
  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t index);
  void heap_push(HeapEntry entry);
  HeapEntry heap_pop_top();
  /// Drops lazily-cancelled entries off the top; afterwards the top entry
  /// (if any) is live.
  void purge_top();

  // --- reference std::map queue (differential-testing oracle) ---
  struct Key {
    std::int64_t at_ns;
    std::uint64_t seq;
    friend auto operator<=>(const Key&, const Key&) = default;
  };

  std::uint64_t push(util::TimePoint at, tcpip::Callback&& fn);
  bool pop_and_run();

  template <class F>
  std::uint64_t emplace_event(util::TimePoint at, F&& f) {
    if (policy_ == QueuePolicy::kReferenceMap) {
      return push(at, tcpip::Callback{std::forward<F>(f)});
    }
    if (at < now_) at = now_;
    const std::uint32_t slot = alloc_slot();
    fns_[slot].emplace(std::forward<F>(f));
    return arm_slot(at, slot);
  }

  /// Tags `slot` with a fresh seq and inserts it into the heap. The packed
  /// word doubles as the token: seq starts at 1, so a token is never 0
  /// (the universal "no timer armed" sentinel), and seq never repeats, so
  /// tokens are unique for the loop's lifetime.
  std::uint64_t arm_slot(util::TimePoint at, std::uint32_t slot) {
    const std::uint64_t seq = next_seq_++;
    ++live_;
    meta_[slot].live_seq = seq;
    const std::uint64_t seq_slot = (seq << kSlotBits) | slot;
    heap_push(HeapEntry{at.ns(), seq_slot});
    return seq_slot;
  }

  QueuePolicy policy_{QueuePolicy::kIndexedHeap};
  util::TimePoint now_;
  std::uint64_t next_seq_{1};  ///< starts at 1 so packed tokens are never 0
  std::uint64_t executed_{0};
  std::size_t live_{0};  ///< scheduled and not yet run or cancelled
  ExecutedHook hook_;

  std::vector<HeapEntry> heap_;
  std::vector<SlotMeta> meta_;
  std::vector<tcpip::Callback> fns_;  ///< parallel to meta_
  std::uint32_t free_head_{kNilSlot};

  std::uint64_t next_token_{1};
  std::map<Key, std::pair<std::uint64_t, tcpip::Callback>> map_queue_;
  std::map<std::uint64_t, Key> by_token_;
};

}  // namespace reorder::sim
