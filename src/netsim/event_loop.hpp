// Discrete-event simulation core. Single-threaded; events run in timestamp
// order with FIFO tie-breaking, which makes every experiment bit-for-bit
// reproducible from its seeds.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "tcpip/env.hpp"
#include "util/time.hpp"

namespace reorder::sim {

/// The simulation clock and scheduler. Implements tcpip::Environment so
/// protocol stacks can arm timers without knowing about the simulator.
class EventLoop final : public tcpip::Environment {
 public:
  EventLoop() = default;

  util::TimePoint now() const override { return now_; }

  /// Schedules `fn` at now() + delay (delay clamped to >= 0).
  std::uint64_t schedule(util::Duration delay, std::function<void()> fn) override;

  /// Schedules `fn` at an absolute time (clamped to >= now()).
  std::uint64_t schedule_at(util::TimePoint at, std::function<void()> fn);

  void cancel(std::uint64_t token) override;

  /// Runs every pending event (including ones scheduled while running).
  /// Returns the number of events executed.
  std::uint64_t run();

  /// Runs events with timestamp <= deadline; leaves now() at the deadline
  /// (or the last event time if the queue empties beyond it).
  std::uint64_t run_until(util::TimePoint deadline);

  /// Runs until `stop()` is requested, the queue empties, or `deadline`
  /// passes. Returns true if stopped by request.
  bool run_while(util::TimePoint deadline, const std::function<bool()>& keep_going);

  /// Convenience: advance the clock by `d`, running due events.
  void advance(util::Duration d) { run_until(now_ + d); }

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  std::uint64_t events_executed() const { return executed_; }

 private:
  struct Key {
    std::int64_t at_ns;
    std::uint64_t seq;
    friend auto operator<=>(const Key&, const Key&) = default;
  };
  std::uint64_t push(util::TimePoint at, std::function<void()> fn);
  bool pop_and_run();

  util::TimePoint now_;
  std::uint64_t next_seq_{0};
  std::uint64_t next_token_{1};
  std::uint64_t executed_{0};
  std::map<Key, std::pair<std::uint64_t, std::function<void()>>> queue_;
  std::map<std::uint64_t, Key> by_token_;
};

}  // namespace reorder::sim
