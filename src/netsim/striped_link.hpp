// Per-packet striping across parallel L2 links — the physical reordering
// source the paper identifies in §IV-C. Each lane has its own queue whose
// backlog fluctuates with background cross-traffic. A packet's departure is
// delayed by the residual backlog of its lane; when a later packet lands on
// an emptier lane it can overtake an earlier one. Because queues drain at a
// constant rate, the overtaking probability falls with the inter-arrival
// gap between the two packets — producing the time-domain distribution of
// Fig. 7.
#pragma once

#include <cstdint>
#include <vector>

#include "netsim/event_loop.hpp"
#include "netsim/stage.hpp"
#include "util/random.hpp"

namespace reorder::sim {

/// Distribution of the per-packet background backlog draw. Exponential
/// gives the memoryless decay seen in Fig. 7; uniform (same mean) has a
/// hard cutoff at twice the mean — the ablation benches contrast them.
enum class BacklogModel { kExponential, kUniform };

struct StripedLinkConfig {
  std::size_t lanes{2};
  BacklogModel backlog_model{BacklogModel::kExponential};
  /// Drain rate of each lane's queue, bits per second.
  std::int64_t lane_bandwidth_bps{100'000'000};
  /// Propagation delay common to all lanes.
  util::Duration propagation{util::Duration::millis(2)};
  /// Mean of the exponentially distributed background backlog (bytes)
  /// sampled per packet per lane. Dispersion of this draw is what allows
  /// overtaking; its scale (divided by bandwidth) sets the time constant of
  /// the reordering-vs-gap decay. The default (312 bytes at 100 Mbps ==
  /// ~25 us) calibrates the decay to the paper's Fig. 7: >10% back-to-back,
  /// <2% at 50 us, ~0 at 250 us.
  double mean_backlog_bytes{312.0};
  /// Probability that a packet experiences any cross-traffic contention at
  /// all; calibrates the back-to-back reordering rate (~11%).
  double contention_probability{0.12};
};

/// Round-robin per-packet striping over `lanes` independent queues.
class StripedLink final : public Stage {
 public:
  StripedLink(EventLoop& loop, StripedLinkConfig config, util::Rng rng);

  void accept(tcpip::Packet pkt) override;
  std::string name() const override { return "striped-link"; }

  std::uint64_t forwarded() const { return forwarded_; }

 private:
  EventLoop& loop_;
  StripedLinkConfig config_;
  util::Rng rng_;
  std::vector<util::TimePoint> lane_busy_until_;
  std::size_t next_lane_{0};
  std::uint64_t forwarded_{0};
};

}  // namespace reorder::sim
