// The dummynet modification from the paper's controlled validation
// (§IV-A): "swap adjacent packets according to a specified probability
// distribution". With probability p an arriving packet is held back and
// released immediately after the next packet passes, i.e. the adjacent
// pair is exchanged. A bounded hold timer releases a held packet if no
// successor arrives (end of a burst), so the shaper cannot wedge a flow.
#pragma once

#include <cstdint>
#include <optional>

#include "netsim/event_loop.hpp"
#include "netsim/stage.hpp"
#include "util/random.hpp"

namespace reorder::sim {

struct SwapShaperConfig {
  /// Probability that an arriving packet is swapped with its successor.
  double swap_probability{0.0};
  /// Maximum time a packet may be held waiting for a successor.
  util::Duration max_hold{util::Duration::millis(50)};
};

/// Swaps adjacent packets with a configured probability.
class SwapShaper final : public Stage {
 public:
  SwapShaper(EventLoop& loop, SwapShaperConfig config, util::Rng rng);

  void accept(tcpip::Packet pkt) override;
  std::string name() const override { return "swap-shaper"; }

  /// Changes the swap probability on the fly (used by the time-varying
  /// reordering process in the Fig. 6 experiment).
  void set_swap_probability(double p) { config_.swap_probability = p; }
  double swap_probability() const { return config_.swap_probability; }

  std::uint64_t swaps_completed() const { return swaps_completed_; }
  std::uint64_t holds_timed_out() const { return holds_timed_out_; }
  std::uint64_t packets_seen() const { return packets_seen_; }

 private:
  void release_held();

  EventLoop& loop_;
  SwapShaperConfig config_;
  util::Rng rng_;
  std::optional<tcpip::Packet> held_;
  std::uint64_t hold_token_{0};
  std::uint64_t swaps_completed_{0};
  std::uint64_t holds_timed_out_{0};
  std::uint64_t packets_seen_{0};
};

}  // namespace reorder::sim
