// Packet trace capture. A TraceTap is a transparent stage dropped into a
// path at the point of interest (e.g. just before the remote host); it
// records (timestamp, packet) pairs that the Analyzer later turns into
// ground-truth ordering information — the role tcpdump played in the
// paper's controlled validation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netsim/event_loop.hpp"
#include "netsim/stage.hpp"
#include "tcpip/packet.hpp"
#include "util/time.hpp"

namespace reorder::trace {

/// One captured packet.
struct TraceRecord {
  util::TimePoint at;
  tcpip::Packet packet;
};

/// Append-only capture buffer shared by taps and analyzers.
class TraceBuffer {
 public:
  void record(util::TimePoint at, const tcpip::Packet& pkt) {
    records_.push_back(TraceRecord{at, pkt});
  }
  void clear() { records_.clear(); }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const std::vector<TraceRecord>& records() const { return records_; }

  /// Records whose packet uid is in `uids`, in capture order.
  std::vector<TraceRecord> filter_uids(const std::vector<std::uint64_t>& uids) const;

 private:
  std::vector<TraceRecord> records_;
};

/// Transparent capture stage: copies every packet into a TraceBuffer and
/// forwards it unmodified with zero added delay.
class TraceTap final : public sim::Stage {
 public:
  TraceTap(sim::EventLoop& loop, TraceBuffer& buffer, std::string label)
      : loop_{loop}, buffer_{buffer}, label_{std::move(label)} {}

  void accept(tcpip::Packet pkt) override {
    buffer_.record(loop_.now(), pkt);
    emit(std::move(pkt));
  }
  std::string name() const override { return "tap:" + label_; }

 private:
  sim::EventLoop& loop_;
  TraceBuffer& buffer_;
  std::string label_;
};

}  // namespace reorder::trace
