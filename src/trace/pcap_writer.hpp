// Writes captured traces as standard pcap files (LINKTYPE_RAW, IPv4
// datagrams), openable with tcpdump/wireshark. Serializes through the real
// wire codec, so checksums in the output are valid.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace reorder::trace {

/// Streams pcap records to any std::ostream.
class PcapWriter {
 public:
  /// Writes the global header. linktype 101 = LINKTYPE_RAW (raw IP).
  explicit PcapWriter(std::ostream& out);

  /// Appends one captured packet.
  void write(const TraceRecord& record);

  std::size_t packets_written() const { return packets_; }

 private:
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  std::ostream& out_;
  std::size_t packets_{0};
  std::vector<std::uint8_t> scratch_;  ///< reused wire buffer, one per writer
};

/// Convenience: dumps a whole buffer to `path`. Returns false on I/O error.
bool write_pcap_file(const std::string& path, const TraceBuffer& buffer);

}  // namespace reorder::trace
