#include "trace/pcap_writer.hpp"

#include <fstream>

namespace reorder::trace {

namespace {
constexpr std::uint32_t kMagicMicros = 0xa1b2c3d4;  // classic pcap, microsecond stamps
constexpr std::uint32_t kLinktypeRaw = 101;
}  // namespace

PcapWriter::PcapWriter(std::ostream& out) : out_{out} {
  // pcap files are little-endian when written with this magic on x86; we
  // emit little-endian explicitly for portability.
  u32(kMagicMicros);
  u16(2);   // version major
  u16(4);   // version minor
  u32(0);   // thiszone
  u32(0);   // sigfigs
  u32(65535);  // snaplen
  u32(kLinktypeRaw);
}

void PcapWriter::u16(std::uint16_t v) {
  const char bytes[2] = {static_cast<char>(v & 0xff), static_cast<char>(v >> 8)};
  out_.write(bytes, 2);
}

void PcapWriter::u32(std::uint32_t v) {
  const char bytes[4] = {static_cast<char>(v & 0xff), static_cast<char>((v >> 8) & 0xff),
                         static_cast<char>((v >> 16) & 0xff), static_cast<char>(v >> 24)};
  out_.write(bytes, 4);
}

void PcapWriter::write(const TraceRecord& record) {
  record.packet.to_wire_into(scratch_);
  const std::int64_t ns = record.at.ns();
  u32(static_cast<std::uint32_t>(ns / 1'000'000'000));
  u32(static_cast<std::uint32_t>((ns % 1'000'000'000) / 1'000));
  u32(static_cast<std::uint32_t>(scratch_.size()));
  u32(static_cast<std::uint32_t>(scratch_.size()));
  out_.write(reinterpret_cast<const char*>(scratch_.data()),
             static_cast<std::streamsize>(scratch_.size()));
  ++packets_;
}

bool write_pcap_file(const std::string& path, const TraceBuffer& buffer) {
  std::ofstream f{path, std::ios::binary};
  if (!f) return false;
  PcapWriter w{f};
  for (const auto& rec : buffer.records()) w.write(rec);
  f.flush();
  return static_cast<bool>(f);
}

}  // namespace reorder::trace
