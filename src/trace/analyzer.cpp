#include "trace/analyzer.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "tcpip/seq.hpp"

namespace reorder::trace {

std::uint64_t count_inversions(const std::vector<std::uint32_t>& arrival) {
  // O(n^2) is fine: sample sequences are short (paper uses 2..100 packets).
  std::uint64_t inv = 0;
  for (std::size_t i = 0; i < arrival.size(); ++i) {
    for (std::size_t j = i + 1; j < arrival.size(); ++j) {
      if (arrival[i] > arrival[j]) ++inv;
    }
  }
  return inv;
}

std::uint64_t count_pair_exchanges(const std::vector<std::uint32_t>& arrival) {
  // Position of each send index in the arrival sequence.
  std::map<std::uint32_t, std::size_t> pos;
  for (std::size_t i = 0; i < arrival.size(); ++i) pos.emplace(arrival[i], i);
  std::uint64_t exchanged = 0;
  for (const auto& [send_idx, at] : pos) {
    if (send_idx % 2 != 0) continue;
    const auto partner = pos.find(send_idx + 1);
    if (partner == pos.end()) continue;
    if (partner->second < at) ++exchanged;
  }
  return exchanged;
}

bool any_reordering(const std::vector<std::uint32_t>& arrival) {
  return !std::is_sorted(arrival.begin(), arrival.end());
}

ArrivalOrder arrival_order(const TraceBuffer& buffer, const std::vector<std::uint64_t>& sent_uids) {
  std::map<std::uint64_t, std::uint32_t> send_index;
  for (std::size_t i = 0; i < sent_uids.size(); ++i) {
    send_index.emplace(sent_uids[i], static_cast<std::uint32_t>(i));
  }
  ArrivalOrder out;
  std::set<std::uint64_t> seen;
  for (const auto& rec : buffer.records()) {
    const auto it = send_index.find(rec.packet.uid);
    if (it == send_index.end()) continue;
    if (!seen.insert(rec.packet.uid).second) continue;  // retransmit duplicate
    out.arrival.push_back(it->second);
  }
  for (const auto& [uid, idx] : send_index) {
    if (!seen.contains(uid)) out.missing.push_back(idx);
  }
  std::sort(out.missing.begin(), out.missing.end());
  return out;
}

PairGroundTruth pair_ground_truth(const TraceBuffer& buffer, std::uint64_t uid_first,
                                  std::uint64_t uid_second) {
  std::optional<std::size_t> first_at;
  std::optional<std::size_t> second_at;
  const auto& recs = buffer.records();
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const std::uint64_t uid = recs[i].packet.uid;
    if (uid == uid_first && !first_at) first_at = i;
    if (uid == uid_second && !second_at) second_at = i;
  }
  if (!first_at || !second_at) return PairGroundTruth::kIncomplete;
  return *second_at < *first_at ? PairGroundTruth::kReordered : PairGroundTruth::kInOrder;
}

TcpTraceStats analyze_tcp_stream(const TraceBuffer& buffer, std::uint16_t src_port,
                                 std::uint16_t dst_port) {
  TcpTraceStats stats;
  bool have_any = false;
  std::uint32_t max_end = 0;  // highest sequence number seen + segment length
  std::set<std::uint32_t> starts_seen;
  for (const auto& rec : buffer.records()) {
    const auto& p = rec.packet;
    if (p.tcp.src_port != src_port || p.tcp.dst_port != dst_port) continue;
    if (p.payload.empty()) continue;
    ++stats.data_segments;
    const std::uint32_t seg_seq = p.tcp.seq;
    const auto seg_end = seg_seq + static_cast<std::uint32_t>(p.payload.size());
    if (!have_any) {
      have_any = true;
      max_end = seg_end;
      starts_seen.insert(seg_seq);
      continue;
    }
    if (!starts_seen.insert(seg_seq).second) {
      ++stats.retransmissions;
      continue;
    }
    if (tcpip::seq_lt(seg_seq, max_end)) {
      // Arrived below the highest point: delivered after a later packet.
      ++stats.out_of_order;
    } else if (tcpip::seq_gt(seg_seq, max_end)) {
      ++stats.max_advance_jumps;  // created a hole: something is late/lost
    }
    max_end = tcpip::seq_max(max_end, seg_end);
  }
  return stats;
}

std::vector<std::uint32_t> data_arrival_sequence(const TraceBuffer& buffer,
                                                 std::uint16_t src_port,
                                                 std::uint16_t dst_port) {
  // First arrivals of each distinct data segment, in capture order.
  std::vector<std::uint32_t> seqs;
  std::set<std::uint32_t> seen;
  for (const auto& rec : buffer.records()) {
    const auto& p = rec.packet;
    if (p.tcp.src_port != src_port || p.tcp.dst_port != dst_port) continue;
    if (p.payload.empty()) continue;
    if (!seen.insert(p.tcp.seq).second) continue;  // retransmit
    seqs.push_back(p.tcp.seq);
  }
  // Send index = rank of the TCP sequence number. (Transfers here start
  // far from the 2^32 wrap; rank order equals send order.)
  std::vector<std::uint32_t> sorted{seqs};
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::uint32_t> arrival;
  arrival.reserve(seqs.size());
  for (const std::uint32_t s : seqs) {
    const auto it = std::lower_bound(sorted.begin(), sorted.end(), s);
    arrival.push_back(static_cast<std::uint32_t>(it - sorted.begin()));
  }
  return arrival;
}

}  // namespace reorder::trace
