#include "trace/trace.hpp"

#include <algorithm>

namespace reorder::trace {

std::vector<TraceRecord> TraceBuffer::filter_uids(const std::vector<std::uint64_t>& uids) const {
  std::vector<TraceRecord> out;
  for (const auto& r : records_) {
    if (std::find(uids.begin(), uids.end(), r.packet.uid) != uids.end()) out.push_back(r);
  }
  return out;
}

}  // namespace reorder::trace
