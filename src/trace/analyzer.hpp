// Ground-truth ordering analysis over captured traces.
//
// Two families of questions:
//  * permutation metrics — given packets labeled by send order, how many
//    adjacent exchanges / inversions did the network apply? (the paper's
//    primitive metric and its generalizations)
//  * trace queries — given a TraceBuffer and the uids of sample packets in
//    send order, recover the arrival permutation and the pairwise verdicts
//    the measurement tests are supposed to report.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "trace/trace.hpp"

namespace reorder::trace {

/// Number of inversions in `arrival`: pairs (i < j) with arrival[i] >
/// arrival[j], where arrival is the sequence of send indices in arrival
/// order. Equals the number of adjacent transpositions bubble sort needs.
std::uint64_t count_inversions(const std::vector<std::uint32_t>& arrival);

/// The paper's primitive metric for a pair stream: for consecutive send
/// indices (2k, 2k+1), counts pairs whose arrival order is exchanged.
std::uint64_t count_pair_exchanges(const std::vector<std::uint32_t>& arrival);

/// True iff any packet arrived before one sent earlier (any inversion).
bool any_reordering(const std::vector<std::uint32_t>& arrival);

/// Recovered arrival data for a set of sample packets.
struct ArrivalOrder {
  /// Send indices in arrival order; missing packets are absent.
  std::vector<std::uint32_t> arrival;
  /// Send indices that never arrived (lost before the tap).
  std::vector<std::uint32_t> missing;
  bool complete() const { return missing.empty(); }
};

/// Matches `sent_uids` (in send order) against a capture buffer. Duplicate
/// captures of the same uid (retransmits) count once, first arrival wins.
ArrivalOrder arrival_order(const TraceBuffer& buffer, const std::vector<std::uint64_t>& sent_uids);

/// Verdict for one two-packet sample, as ground truth sees it.
enum class PairGroundTruth { kInOrder, kReordered, kIncomplete };

/// Ground truth for a pair of sample packets (uid_first sent before
/// uid_second): did they arrive exchanged at the tap?
PairGroundTruth pair_ground_truth(const TraceBuffer& buffer, std::uint64_t uid_first,
                                  std::uint64_t uid_second);

/// Paxson-style passive analysis of a unidirectional TCP data trace:
/// counts data segments arriving with a sequence number below the highest
/// in-sequence point (out-of-order deliveries), separating probable
/// retransmissions (same seq seen twice) from reorderings.
struct TcpTraceStats {
  std::uint64_t data_segments{0};
  std::uint64_t out_of_order{0};
  std::uint64_t retransmissions{0};
  std::uint64_t max_advance_jumps{0};  ///< segments that created a hole
};
TcpTraceStats analyze_tcp_stream(const TraceBuffer& buffer, std::uint16_t src_port,
                                 std::uint16_t dst_port);

/// The send-index arrival sequence of a unidirectional TCP data stream:
/// data segments flowing src_port -> dst_port, deduplicated by TCP
/// sequence number (first arrival wins — retransmits are dropped), each
/// assigned a send index by the rank of its sequence number. This is the
/// input the streaming sequence metrics (RFC 4737 extents, RFC 5236
/// n-reordering, reorder/buffer densities) consume.
std::vector<std::uint32_t> data_arrival_sequence(const TraceBuffer& buffer,
                                                 std::uint16_t src_port, std::uint16_t dst_port);

}  // namespace reorder::trace
