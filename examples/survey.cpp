// survey: continuous round-robin measurement of a population of hosts —
// the shape of the paper's 20-day, 50-host experiment — ending in the
// per-path reordering-rate CDF (Figure 5's presentation), rendered
// through the report layer.
//
//   $ survey --hosts=20 --rounds=6 --samples=15 --reordering-fraction=0.44
#include <cstdio>

#include "core/survey_engine.hpp"
#include "core/testbed.hpp"
#include "report/builders.hpp"
#include "util/flags.hpp"
#include "util/random.hpp"

int main(int argc, char** argv) {
  using namespace reorder;
  using util::Duration;

  std::int64_t hosts = 20;
  std::int64_t rounds = 6;
  std::int64_t samples = 15;
  std::int64_t seed = 11;
  double reordering_fraction = 0.44;

  util::Flags flags{"survey", "round-robin reordering survey over many paths"};
  flags.add_i64("hosts", &hosts, "number of simulated paths");
  flags.add_i64("rounds", &rounds, "measurement rounds per host");
  flags.add_i64("samples", &samples, "samples per measurement (paper: 15)");
  flags.add_i64("seed", &seed, "population seed");
  flags.add_double("reordering-fraction", &reordering_fraction,
                   "fraction of paths that reorder at all");
  if (!flags.parse(argc, argv)) return 1;

  util::Rng population{static_cast<std::uint64_t>(seed)};
  report::RateCdfReport cdf{{0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.3}};

  report::Table per_host = report::Table::with_headers(
      {"host", "true fwd", "true rev", "measured fwd", "measured rev"});
  for (int h = 0; h < hosts; ++h) {
    double true_fwd = 0.0;
    double true_rev = 0.0;
    if (population.bernoulli(reordering_fraction)) {
      true_fwd = std::min(0.35, population.exponential(0.06));
      true_rev = true_fwd * population.uniform(0.1, 0.6);
    }

    core::TestbedConfig cfg;
    cfg.seed = static_cast<std::uint64_t>(seed) * 100 + static_cast<std::uint64_t>(h);
    cfg.forward.swap_probability = true_fwd;
    cfg.reverse.swap_probability = true_rev;
    cfg.remote = core::default_remote_config();
    cfg.remote.behavior.immediate_ack_on_hole_fill = true;
    core::Testbed bed{cfg};

    core::SurveyEngine session{bed.loop()};
    session.add_target("host", bed.probe(), bed.remote_addr(),
                       {core::TestSpec{"single-connection"}, core::TestSpec{"syn"}});

    core::TestRunConfig run;
    run.samples = static_cast<int>(samples);
    session.run(run, static_cast<int>(rounds), Duration::seconds(1));

    // Pool both techniques, as the paper's per-path summary does — all
    // snapshot reads of the survey engine's metric accumulators.
    core::ReorderEstimate pooled_fwd;
    core::ReorderEstimate pooled_rev;
    for (const char* test : {"single-connection", "syn"}) {
      pooled_fwd += session.aggregate("host", test, true);
      pooled_rev += session.aggregate("host", test, false);
    }
    cdf.add_target(session.metrics(), "host");
    per_host.row({report::integer(h), report::fixed(true_fwd, 3), report::fixed(true_rev, 3),
                  report::fixed(pooled_fwd.rate_or(0.0), 3),
                  report::fixed(pooled_rev.rate_or(0.0), 3)});
  }
  per_host.print();

  std::printf("\nCDF of measured per-path rates:\n");
  cdf.table().print();
  std::printf("\npaths with observed reordering: %d / %lld (%.0f%%)\n",
              cdf.paths_with_reordering(), static_cast<long long>(hosts),
              100.0 * cdf.paths_with_reordering() / static_cast<double>(hosts));
  return 0;
}
