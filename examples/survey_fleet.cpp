// survey_fleet: the paper's §IV-B continuous survey at fleet scale — many
// target hosts, each behind its own emulated path, measured concurrently
// on ONE event loop by the async SurveyEngine. Where `survey` builds a
// fresh single-host world per path and measures them one after another,
// this is the production shape: per-target state machines interleave
// their measurement cycles in a single virtual timeline, so a slow or
// lossy target never stalls the rest of the fleet.
//
// Results STREAM: a live ResultSink narrates completions as they land
// (watch the targets interleave), and --jsonl=PATH attaches a second
// sink that writes every event as JSON Lines.
//
// With --shards=N (N >= 2) the fleet is partitioned across N independent
// simulation shards executed on a thread pool (core::ShardedSurveyEngine)
// and merged bit-exactly afterwards: identical metric snapshots for any
// shard count, byte-identical canonical JSONL among sharded runs, a
// fraction of the wall clock. (--shards=1 keeps the live single-loop
// stream — same worlds and same summary numbers, but events in
// completion order rather than the merge's canonical order.)
//
// With --checkpoint=PATH every completed shard is durably recorded
// (atomic rewrite per completion); a run killed mid-flight resumes with
// --resume --checkpoint=PATH, re-running only the missing shards and
// producing byte-identical merged output. --jsonl artifacts are written
// crash-safely (tmp + rename): readers never see a torn file.
//
//   $ survey_fleet --targets=8 --rounds=4 --samples=15 --seed=11
//   $ survey_fleet --targets=64 --shards=8 --jsonl=fleet.jsonl
//   $ survey_fleet --targets=64 --shards=8 --checkpoint=fleet.ckpt   # killed...
//   $ survey_fleet --targets=64 --shards=8 --checkpoint=fleet.ckpt --resume
#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>

#include "core/checkpoint.hpp"
#include "core/sharded_survey.hpp"
#include "core/survey_testbed.hpp"
#include "report/sinks.hpp"
#include "report/table.hpp"
#include "stats/ecdf.hpp"
#include "util/flags.hpp"
#include "util/random.hpp"
#include "util/shard_seeder.hpp"

namespace {

using namespace reorder;

}  // namespace

int main(int argc, char** argv) {
  using util::Duration;

  std::int64_t targets = 8;
  std::int64_t rounds = 4;
  std::int64_t samples = 15;
  std::int64_t seed = 11;
  std::int64_t shards = 1;
  std::int64_t threads = 0;
  std::int64_t narrate_every = -1;
  double reordering_fraction = 0.5;
  std::string jsonl_path;
  std::string checkpoint_path;
  bool resume = false;

  util::Flags flags{"survey_fleet", "concurrent multi-target reordering survey"};
  flags.add_i64("targets", &targets, "number of hosts surveyed concurrently");
  flags.add_i64("rounds", &rounds, "measurement cycles per host");
  flags.add_i64("samples", &samples, "samples per measurement (paper: 15)");
  flags.add_i64("seed", &seed, "population seed");
  flags.add_i64("shards", &shards,
                "simulation shards run in parallel (1 = single-loop live streaming)");
  flags.add_i64("threads", &threads, "worker threads for --shards > 1 (0 = auto)");
  flags.add_i64("narrate-every", &narrate_every,
                "narrate every Nth completion (0 = quiet, -1 = auto: full detail up to "
                "10k targets, sampled above)");
  flags.add_double("reordering-fraction", &reordering_fraction,
                   "fraction of paths that reorder at all");
  flags.add_string("jsonl", &jsonl_path, "stream every survey event to this JSONL file");
  flags.add_string("checkpoint", &checkpoint_path,
                   "durably record each completed shard here (forces the sharded runtime)");
  flags.add_bool("resume", &resume,
                 "restore completed shards from --checkpoint and run only the rest");
  if (!flags.parse(argc, argv)) return 1;
  if (resume && checkpoint_path.empty()) {
    std::fprintf(stderr, "survey_fleet: --resume needs --checkpoint=PATH\n");
    return 1;
  }
  if (targets < 1 || rounds < 1 || samples < 1 || shards < 1 || threads < 0) {
    std::fprintf(stderr,
                 "survey_fleet: --targets/--rounds/--samples/--shards must be >= 1 "
                 "and --threads >= 0\n");
    return 1;
  }

  // Draw a host population: some clean paths, some reordering ones.
  util::Rng population{static_cast<std::uint64_t>(seed)};
  std::vector<double> true_fwd(static_cast<std::size_t>(targets), 0.0);
  core::SurveyTestbedConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(seed);
  for (std::int64_t i = 0; i < targets; ++i) {
    core::SurveyTargetConfig target;
    target.name = "host-" + std::to_string(i);
    if (population.bernoulli(reordering_fraction)) {
      true_fwd[static_cast<std::size_t>(i)] = std::min(0.35, population.exponential(0.08));
      target.forward.swap_probability = true_fwd[static_cast<std::size_t>(i)];
      target.reverse.swap_probability =
          true_fwd[static_cast<std::size_t>(i)] * population.uniform(0.1, 0.6);
    }
    target.remote.behavior.immediate_ack_on_hole_fill = true;
    target.tests = {core::TestSpec{"single-connection"}, core::TestSpec{"syn"}};
    // Pin every target's stochastic identity to its global index in ALL
    // modes, so the live single-loop run (--shards=1) measures exactly
    // the worlds the sharded runs re-partition.
    const util::TargetSeeds seeds =
        util::ShardSeeder{static_cast<std::uint64_t>(seed)}.target(
            static_cast<std::uint64_t>(i));
    target.host_seed = seeds.host_seed;
    target.ipid_initial = seeds.ipid_initial;
    target.forward_path_tag = seeds.forward_tag;
    target.reverse_path_tag = seeds.reverse_tag;
    cfg.targets.push_back(std::move(target));
  }
  core::TestRunConfig run;
  run.samples = static_cast<int>(samples);

  if (shards > 1 || !checkpoint_path.empty()) {
    // The sharded runtime: N independent worlds on a thread pool, merged
    // bit-exactly. Events are not streamed live (the merge canonicalizes
    // ordering after the fact), so the narrator is replaced by a summary.
    core::ShardedSurveyConfig scfg;
    scfg.fleet = std::move(cfg);
    scfg.shards = static_cast<std::size_t>(shards);
    scfg.threads = static_cast<std::size_t>(threads);
    scfg.checkpoint_path = checkpoint_path;
    core::ShardedSurveyEngine engine{std::move(scfg)};

    const auto wall_start = std::chrono::steady_clock::now();
    if (resume) {
      // Re-run only what the checkpoint does not hold (torn records were
      // dropped at load and their shards re-run). A checkpoint from a
      // different plan (fleet, shards, rounds, seed) is rejected.
      const core::SurveyCheckpoint cp = core::SurveyCheckpoint::load(checkpoint_path);
      std::printf("resuming: %zu/%lld shards restored from %s (%zu torn records dropped)\n",
                  cp.completed_count(), static_cast<long long>(shards),
                  checkpoint_path.c_str(), cp.torn_records());
      engine.resume(cp, run, static_cast<int>(rounds), Duration::seconds(1));
    } else {
      engine.run(run, static_cast<int>(rounds), Duration::seconds(1));
    }
    const auto& ms = engine.measurements();
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
    if (engine.degraded()) {
      std::printf("DEGRADED: %zu shard(s) failed every attempt; %zu target(s) unmeasured\n",
                  engine.failed_shard_indices().size(),
                  engine.survey_end().failed_targets.size());
    }

    report::Table table =
        report::Table::with_headers({"target", "true fwd", "single-conn", "syn"});
    stats::Ecdf fwd_rates;
    int reordering_paths = 0;
    for (std::int64_t i = 0; i < targets; ++i) {
      const std::string name = "host-" + std::to_string(i);
      const auto single = engine.aggregate(name, "single-connection", /*forward=*/true);
      const auto syn = engine.aggregate(name, "syn", /*forward=*/true);
      core::ReorderEstimate pooled;
      pooled += single;
      pooled += syn;
      fwd_rates.add(pooled.rate_or(0.0));
      if (pooled.reordered > 0) ++reordering_paths;
      table.row({name, report::fixed(true_fwd[static_cast<std::size_t>(i)], 3),
                 report::fixed(single.rate_or(0.0), 3), report::fixed(syn.rate_or(0.0), 3)});
    }
    table.print();

    std::printf("\nmeasurements taken: %zu  (%lld targets x %lld rounds x 2 tests)\n", ms.size(),
                static_cast<long long>(targets), static_cast<long long>(rounds));
    std::printf("virtual survey duration: %.1fs  across %zu shards (%.2fs wall)\n",
                engine.survey_end().at.seconds_f(), engine.shard_count(), wall_s);
    std::printf("paths with observed reordering: %d / %lld\n", reordering_paths,
                static_cast<long long>(targets));
    std::printf("median measured forward rate: %.4f\n", fwd_rates.quantile(0.5));
    if (!jsonl_path.empty()) {
      // The canonical merged stream: byte-identical for any --shards >= 2
      // (--shards=1 streams live in completion order instead). Written
      // crash-safely — the artifact appears only complete.
      report::AtomicJsonlFile file{jsonl_path};
      engine.emit_jsonl(file.writer());
      const std::size_t lines = file.writer().lines_written();
      file.commit();
      std::printf("streamed %zu JSONL records to %s\n", lines, jsonl_path.c_str());
    }
    return 0;
  }

  core::SurveyTestbed bed{std::move(cfg)};

  core::SurveyEngine engine{bed.loop()};
  bed.populate(engine);

  // Attach the streaming consumers before the survey starts.
  report::NarratingSink narrator{report::NarrationPolicy::from_flag(
      narrate_every, bed.target_count(), 2 * bed.target_count())};
  engine.add_sink(narrator);
  std::ofstream jsonl_file;
  std::optional<report::JsonlWriter> jsonl_writer;
  std::optional<report::JsonlResultSink> jsonl_sink;
  if (!jsonl_path.empty()) {
    jsonl_file.open(jsonl_path);
    if (!jsonl_file) {
      std::fprintf(stderr, "cannot open %s for writing\n", jsonl_path.c_str());
      return 1;
    }
    jsonl_writer.emplace(jsonl_file);
    jsonl_sink.emplace(*jsonl_writer);
    engine.add_sink(*jsonl_sink);
  }

  engine.run(run, static_cast<int>(rounds), Duration::seconds(1));

  // Per-target summaries are snapshot reads of the engine's metric
  // accumulators (updated mid-survey, in event-loop order).
  report::Table table =
      report::Table::with_headers({"target", "true fwd", "single-conn", "syn"});
  stats::Ecdf fwd_rates;
  int reordering_paths = 0;
  for (std::size_t i = 0; i < bed.target_count(); ++i) {
    const std::string& name = bed.target_name(i);
    const auto single = engine.aggregate(name, "single-connection", /*forward=*/true);
    const auto syn = engine.aggregate(name, "syn", /*forward=*/true);
    core::ReorderEstimate pooled;
    pooled += single;
    pooled += syn;
    fwd_rates.add(pooled.rate_or(0.0));
    if (pooled.reordered > 0) ++reordering_paths;
    table.row({name, report::fixed(true_fwd[i], 3), report::fixed(single.rate_or(0.0), 3),
               report::fixed(syn.rate_or(0.0), 3)});
  }
  table.print();

  const auto& ms = engine.measurements();
  std::printf("\nmeasurements taken: %zu  (%lld targets x %lld rounds x 2 tests)\n", ms.size(),
              static_cast<long long>(targets), static_cast<long long>(rounds));
  std::printf("virtual survey duration: %.1fs  (one blocking pass would serialize %zu "
              "measurements end to end)\n",
              bed.loop().now().seconds_f(), ms.size());
  std::printf("paths with observed reordering: %d / %lld\n", reordering_paths,
              static_cast<long long>(targets));
  std::printf("median measured forward rate: %.4f\n", fwd_rates.quantile(0.5));
  if (jsonl_writer.has_value()) {
    // Close the stream with the engine's per-(target, test) metric
    // snapshots — the JSONL `metrics` record type.
    engine.metrics().emit_jsonl(*jsonl_writer);
    std::printf("streamed %zu JSONL records to %s\n", jsonl_writer->lines_written(),
                jsonl_path.c_str());
  }
  return 0;
}
