// survey_fleet: the paper's §IV-B continuous survey at fleet scale — many
// target hosts, each behind its own emulated path, measured concurrently
// on ONE event loop by the async SurveyEngine. Where `survey` builds a
// fresh single-host world per path and measures them one after another,
// this is the production shape: per-target state machines interleave
// their measurement cycles in a single virtual timeline, so a slow or
// lossy target never stalls the rest of the fleet.
//
// Results STREAM: a live ResultSink narrates completions as they land
// (watch the targets interleave), and --jsonl=PATH attaches a second
// sink that writes every event as JSON Lines.
//
//   $ survey_fleet --targets=8 --rounds=4 --samples=15 --seed=11
#include <cstdio>
#include <fstream>
#include <optional>

#include "core/survey_testbed.hpp"
#include "report/sinks.hpp"
#include "report/table.hpp"
#include "stats/ecdf.hpp"
#include "util/flags.hpp"
#include "util/random.hpp"

namespace {

using namespace reorder;

/// Prints the first few completions as the engine publishes them —
/// mid-survey, in event-loop order.
class NarratingSink final : public core::ResultSink {
 public:
  explicit NarratingSink(std::size_t limit) : limit_{limit} {}

  void on_survey_begin(const core::SurveyEvent& e) override {
    std::printf("survey begins: %zu targets x %d rounds\n", e.targets, e.rounds);
    std::printf("first completions (note the targets interleaving):\n");
  }
  void on_measurement(const core::MeasurementEvent& e) override {
    if (e.measurement_index < limit_) {
      std::printf("  t=%8.3fs  %-8.*s %.*s\n", e.at.seconds_f(),
                  static_cast<int>(e.target.size()), e.target.data(),
                  static_cast<int>(e.test.size()), e.test.data());
    }
  }
  void on_survey_end(const core::SurveyEvent& e) override {
    std::printf("survey complete: %zu measurements by t=%.1fs\n\n", e.measurements,
                e.at.seconds_f());
  }

 private:
  std::size_t limit_;
};

}  // namespace

int main(int argc, char** argv) {
  using util::Duration;

  std::int64_t targets = 8;
  std::int64_t rounds = 4;
  std::int64_t samples = 15;
  std::int64_t seed = 11;
  double reordering_fraction = 0.5;
  std::string jsonl_path;

  util::Flags flags{"survey_fleet", "concurrent multi-target reordering survey"};
  flags.add_i64("targets", &targets, "number of hosts surveyed concurrently");
  flags.add_i64("rounds", &rounds, "measurement cycles per host");
  flags.add_i64("samples", &samples, "samples per measurement (paper: 15)");
  flags.add_i64("seed", &seed, "population seed");
  flags.add_double("reordering-fraction", &reordering_fraction,
                   "fraction of paths that reorder at all");
  flags.add_string("jsonl", &jsonl_path, "stream every survey event to this JSONL file");
  if (!flags.parse(argc, argv)) return 1;

  // Draw a host population: some clean paths, some reordering ones.
  util::Rng population{static_cast<std::uint64_t>(seed)};
  std::vector<double> true_fwd(static_cast<std::size_t>(targets), 0.0);
  core::SurveyTestbedConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(seed);
  for (std::int64_t i = 0; i < targets; ++i) {
    core::SurveyTargetConfig target;
    target.name = "host-" + std::to_string(i);
    if (population.bernoulli(reordering_fraction)) {
      true_fwd[static_cast<std::size_t>(i)] = std::min(0.35, population.exponential(0.08));
      target.forward.swap_probability = true_fwd[static_cast<std::size_t>(i)];
      target.reverse.swap_probability =
          true_fwd[static_cast<std::size_t>(i)] * population.uniform(0.1, 0.6);
    }
    target.remote.behavior.immediate_ack_on_hole_fill = true;
    target.tests = {core::TestSpec{"single-connection"}, core::TestSpec{"syn"}};
    cfg.targets.push_back(std::move(target));
  }
  core::SurveyTestbed bed{std::move(cfg)};

  core::SurveyEngine engine{bed.loop()};
  bed.populate(engine);

  // Attach the streaming consumers before the survey starts.
  NarratingSink narrator{2 * bed.target_count()};
  engine.add_sink(narrator);
  std::ofstream jsonl_file;
  std::optional<report::JsonlWriter> jsonl_writer;
  std::optional<report::JsonlResultSink> jsonl_sink;
  if (!jsonl_path.empty()) {
    jsonl_file.open(jsonl_path);
    if (!jsonl_file) {
      std::fprintf(stderr, "cannot open %s for writing\n", jsonl_path.c_str());
      return 1;
    }
    jsonl_writer.emplace(jsonl_file);
    jsonl_sink.emplace(*jsonl_writer);
    engine.add_sink(*jsonl_sink);
  }

  core::TestRunConfig run;
  run.samples = static_cast<int>(samples);
  engine.run(run, static_cast<int>(rounds), Duration::seconds(1));

  // Per-target summaries are snapshot reads of the engine's metric
  // accumulators (updated mid-survey, in event-loop order).
  report::Table table =
      report::Table::with_headers({"target", "true fwd", "single-conn", "syn"});
  stats::Ecdf fwd_rates;
  int reordering_paths = 0;
  for (std::size_t i = 0; i < bed.target_count(); ++i) {
    const std::string& name = bed.target_name(i);
    const auto single = engine.aggregate(name, "single-connection", /*forward=*/true);
    const auto syn = engine.aggregate(name, "syn", /*forward=*/true);
    core::ReorderEstimate pooled;
    pooled += single;
    pooled += syn;
    fwd_rates.add(pooled.rate_or(0.0));
    if (pooled.reordered > 0) ++reordering_paths;
    table.row({name, report::fixed(true_fwd[i], 3), report::fixed(single.rate_or(0.0), 3),
               report::fixed(syn.rate_or(0.0), 3)});
  }
  table.print();

  const auto& ms = engine.measurements();
  std::printf("\nmeasurements taken: %zu  (%lld targets x %lld rounds x 2 tests)\n", ms.size(),
              static_cast<long long>(targets), static_cast<long long>(rounds));
  std::printf("virtual survey duration: %.1fs  (one blocking pass would serialize %zu "
              "measurements end to end)\n",
              bed.loop().now().seconds_f(), ms.size());
  std::printf("paths with observed reordering: %d / %lld\n", reordering_paths,
              static_cast<long long>(targets));
  std::printf("median measured forward rate: %.4f\n", fwd_rates.quantile(0.5));
  if (jsonl_writer.has_value()) {
    // Close the stream with the engine's per-(target, test) metric
    // snapshots — the JSONL `metrics` record type.
    engine.metrics().emit_jsonl(*jsonl_writer);
    std::printf("streamed %zu JSONL records to %s\n", jsonl_writer->lines_written(),
                jsonl_path.c_str());
  }
  return 0;
}
