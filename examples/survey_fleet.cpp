// survey_fleet: the paper's §IV-B continuous survey at fleet scale — many
// target hosts, each behind its own emulated path, measured concurrently
// on ONE event loop by the async SurveyEngine. Where `survey` builds a
// fresh single-host world per path and measures them one after another,
// this is the production shape: per-target state machines interleave
// their measurement cycles in a single virtual timeline, so a slow or
// lossy target never stalls the rest of the fleet.
//
//   $ survey_fleet --targets=8 --rounds=4 --samples=15 --seed=11
#include <cstdio>

#include "core/survey_testbed.hpp"
#include "stats/ecdf.hpp"
#include "util/flags.hpp"
#include "util/random.hpp"

int main(int argc, char** argv) {
  using namespace reorder;
  using util::Duration;

  std::int64_t targets = 8;
  std::int64_t rounds = 4;
  std::int64_t samples = 15;
  std::int64_t seed = 11;
  double reordering_fraction = 0.5;

  util::Flags flags{"survey_fleet", "concurrent multi-target reordering survey"};
  flags.add_i64("targets", &targets, "number of hosts surveyed concurrently");
  flags.add_i64("rounds", &rounds, "measurement cycles per host");
  flags.add_i64("samples", &samples, "samples per measurement (paper: 15)");
  flags.add_i64("seed", &seed, "population seed");
  flags.add_double("reordering-fraction", &reordering_fraction,
                   "fraction of paths that reorder at all");
  if (!flags.parse(argc, argv)) return 1;

  // Draw a host population: some clean paths, some reordering ones.
  util::Rng population{static_cast<std::uint64_t>(seed)};
  std::vector<double> true_fwd(static_cast<std::size_t>(targets), 0.0);
  core::SurveyTestbedConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(seed);
  for (std::int64_t i = 0; i < targets; ++i) {
    core::SurveyTargetConfig target;
    target.name = "host-" + std::to_string(i);
    if (population.bernoulli(reordering_fraction)) {
      true_fwd[static_cast<std::size_t>(i)] = std::min(0.35, population.exponential(0.08));
      target.forward.swap_probability = true_fwd[static_cast<std::size_t>(i)];
      target.reverse.swap_probability =
          true_fwd[static_cast<std::size_t>(i)] * population.uniform(0.1, 0.6);
    }
    target.remote.behavior.immediate_ack_on_hole_fill = true;
    target.tests = {core::TestSpec{"single-connection"}, core::TestSpec{"syn"}};
    cfg.targets.push_back(std::move(target));
  }
  core::SurveyTestbed bed{std::move(cfg)};

  core::SurveyEngine engine{bed.loop()};
  bed.populate(engine);

  core::TestRunConfig run;
  run.samples = static_cast<int>(samples);
  engine.run(run, static_cast<int>(rounds), Duration::seconds(1));

  // The interleaving is visible in the measurement log: completion order
  // mixes targets instead of finishing one host before starting the next.
  std::printf("first completions (note the targets interleaving):\n");
  const auto& ms = engine.measurements();
  for (std::size_t i = 0; i < ms.size() && i < 2 * bed.target_count(); ++i) {
    std::printf("  t=%8.3fs  %-8s %s\n", ms[i].at.seconds_f(), ms[i].target.c_str(),
                ms[i].test.c_str());
  }

  std::printf("\n%-10s %10s %14s %10s\n", "target", "true fwd", "single-conn", "syn");
  std::printf("-----------------------------------------------\n");
  stats::Ecdf fwd_rates;
  int reordering_paths = 0;
  for (std::size_t i = 0; i < bed.target_count(); ++i) {
    const std::string& name = bed.target_name(i);
    const auto single = engine.aggregate(name, "single-connection", /*forward=*/true);
    const auto syn = engine.aggregate(name, "syn", /*forward=*/true);
    core::ReorderEstimate pooled;
    pooled += single;
    pooled += syn;
    fwd_rates.add(pooled.rate());
    if (pooled.reordered > 0) ++reordering_paths;
    std::printf("%-10s %10.3f %14.3f %10.3f\n", name.c_str(), true_fwd[i], single.rate(),
                syn.rate());
  }

  std::printf("\nmeasurements taken: %zu  (%lld targets x %lld rounds x 2 tests)\n", ms.size(),
              static_cast<long long>(targets), static_cast<long long>(rounds));
  std::printf("virtual survey duration: %.1fs  (one blocking pass would serialize %zu "
              "measurements end to end)\n",
              bed.loop().now().seconds_f(), ms.size());
  std::printf("paths with observed reordering: %d / %lld\n", reordering_paths,
              static_cast<long long>(targets));
  std::printf("median measured forward rate: %.4f\n", fwd_rates.quantile(0.5));
  return 0;
}
