// reorder_monitor: the accuracy/memory frontier of the always-on monitor.
//
// Runs every canonical scenario's monitor-level traffic model through the
// exact per-flow metrics AND every bounded detector at each point of a
// (memory budget x flow-table size) sweep, then prints one row per
// (scenario, detector, budget, table) cell: false-positive/false-negative
// rates against the exact verdicts and the headline estimate error. The
// table is the paper-style answer to "how little state can an always-on
// monitor keep before it starts lying?"
//
//   $ reorder_monitor [--seed=1] [--flows=32] [--packets=512]
//                     [--budgets=256,1024,16384] [--slots=64,1024]
//                     [--scenario=<name>] [--jsonl=<path>]
//
// With REORDER_BENCH_JSONL_DIR set (the bench-smoke convention) the same
// {"type":"monitor_accuracy",...} records land in
// $REORDER_BENCH_JSONL_DIR/reorder_monitor.jsonl.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "monitor/differential.hpp"
#include "util/flags.hpp"

namespace {

std::vector<std::size_t> parse_sizes(const std::string& csv) {
  std::vector<std::size_t> out;
  std::stringstream ss{csv};
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(static_cast<std::size_t>(std::stoull(item)));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace reorder;

  std::int64_t seed = 1;
  std::int64_t flows = 32;
  std::int64_t packets = 512;
  std::string budgets = "256,1024,16384";
  std::string slots = "64,1024";
  std::string scenario;
  std::string jsonl_path;
  util::Flags flags{"reorder_monitor", "bounded-monitor accuracy vs memory frontier"};
  flags.add_i64("seed", &seed, "traffic model seed");
  flags.add_i64("flows", &flows, "concurrent flows per scenario");
  flags.add_i64("packets", &packets, "packets per flow");
  flags.add_string("budgets", &budgets, "per-flow detector budgets in bytes, comma separated");
  flags.add_string("slots", &slots, "flow-table sizes to sweep, comma separated");
  flags.add_string("scenario", &scenario, "run a single scenario (default: all)");
  flags.add_string("jsonl", &jsonl_path, "also write monitor_accuracy JSONL here");
  if (!flags.parse(argc, argv)) return 1;

  monitor::DifferentialConfig config;
  config.seed = static_cast<std::uint64_t>(seed);
  config.traffic.flows = static_cast<std::size_t>(flows);
  config.traffic.packets_per_flow = static_cast<std::size_t>(packets);
  config.budgets = parse_sizes(budgets);
  config.table_slots = parse_sizes(slots);
  if (!scenario.empty()) config.scenarios = {scenario};
  if (config.budgets.empty() || config.table_slots.empty()) {
    std::fprintf(stderr, "reorder_monitor: --budgets and --slots must be non-empty\n");
    return 1;
  }

  const std::vector<monitor::AccuracyRecord> records = monitor::run_differential(config);

  std::printf("always-on monitor, accuracy vs memory (seed %lld, %lld flows x %lld packets)\n",
              static_cast<long long>(seed), static_cast<long long>(flows),
              static_cast<long long>(packets));
  std::printf("exact/est: reordered ratio (window_sketch, approx_rate) or mean n (bounded_n)\n\n");
  monitor::accuracy_table(records).print();

  // Budget frontier summary: the cheapest budget per detector at which the
  // large-table sweep stops disagreeing with the exact metrics anywhere.
  std::printf("\nexact-from-budget frontier (largest table):\n");
  std::size_t big_table = 0;
  for (const std::size_t s : config.table_slots) big_table = std::max(big_table, s);
  for (const char* name : {"window_sketch", "approx_rate", "bounded_n"}) {
    std::size_t frontier = 0;
    for (const std::size_t b : config.budgets) {
      bool clean = true;
      for (const auto& r : records) {
        if (r.detector != name || r.budget_bytes != b || r.table_slots != big_table) continue;
        if (r.false_positives != 0 || r.false_negatives != 0) clean = false;
      }
      if (clean) {
        frontier = b;
        break;
      }
    }
    if (frontier != 0) {
      std::printf("  %-14s exact verdicts from %zu B/flow\n", name, frontier);
    } else {
      std::printf("  %-14s not exact at any swept budget\n", name);
    }
  }

  const auto write_jsonl = [&records](const std::string& path) {
    std::ofstream out{path};
    if (!out) {
      std::fprintf(stderr, "reorder_monitor: cannot open %s\n", path.c_str());
      return false;
    }
    report::JsonlWriter writer{out};
    monitor::emit_accuracy_jsonl(writer, records);
    return true;
  };
  if (!jsonl_path.empty() && !write_jsonl(jsonl_path)) return 1;
  if (const char* dir = std::getenv("REORDER_BENCH_JSONL_DIR")) {
    const std::string path = std::string{dir} + "/reorder_monitor.jsonl";
    if (write_jsonl(path)) std::printf("\nwrote %zu records to %s\n", records.size(), path.c_str());
  }
  return 0;
}
