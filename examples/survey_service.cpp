// survey_service: the resident survey daemon — ROADMAP item 1's shape.
//
// Where survey_fleet runs one closed fleet to completion, this process
// stays up and ADMITS work continuously into a service::SurveyService:
// targets stream in (a synthetic population, or specs read from a file /
// stdin), a work-stealing pool executes each one as its own simulation
// world, and live fleet-wide snapshots (merged metrics + scheduler
// counters) print mid-run without pausing anything. Identity is pinned
// per global admission index, so the canonical JSONL this daemon writes
// after drain is byte-identical to a one-shot sharded batch run over the
// same population — admit order, batch size, worker count and steal
// schedule all invisible in the output.
//
// SIGTERM/SIGINT stop admission and drain gracefully: in-flight targets
// finish, the checkpoint (when enabled) is durably saved, the summary
// still prints. A run killed outright (SIGKILL) resumes with
// --resume --checkpoint=PATH: completed targets are adopted from the
// checkpoint at admission and only the rest execute.
//
//   $ survey_service --targets=64 --snapshot-every=16
//   $ survey_service --targets=1000000 --lean --narrate-every=100000
//   $ survey_service --admit=fleet.txt --jsonl=out.jsonl
//   $ survey_service --targets=64 --checkpoint=svc.ckpt    # killed...
//   $ survey_service --targets=64 --checkpoint=svc.ckpt --resume
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/survey_testbed.hpp"
#include "report/sinks.hpp"
#include "service/survey_service.hpp"
#include "util/flags.hpp"
#include "util/random.hpp"

namespace {

using namespace reorder;

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

/// The same synthetic host population survey_fleet draws — kept
/// generation-identical so CI can byte-compare this daemon's canonical
/// JSONL against the batch runtime's over the same seed.
std::vector<core::SurveyTargetConfig> synthesize(std::int64_t targets, std::uint64_t seed,
                                                 double reordering_fraction) {
  util::Rng population{seed};
  std::vector<core::SurveyTargetConfig> out;
  out.reserve(static_cast<std::size_t>(targets));
  for (std::int64_t i = 0; i < targets; ++i) {
    core::SurveyTargetConfig target;
    target.name = "host-" + std::to_string(i);
    if (population.bernoulli(reordering_fraction)) {
      const double fwd = std::min(0.35, population.exponential(0.08));
      target.forward.swap_probability = fwd;
      target.reverse.swap_probability = fwd * population.uniform(0.1, 0.6);
    }
    target.remote.behavior.immediate_ack_on_hole_fill = true;
    target.tests = {core::TestSpec{"single-connection"}, core::TestSpec{"syn"}};
    out.push_back(std::move(target));
  }
  return out;
}

/// Target specs from a file (or stdin via "-"), one per line:
///   <name> [forward_swap [reverse_swap]]
/// Blank lines and '#' comments skipped. Identity (address, seeds) is
/// pinned by the service at admission.
std::vector<core::SurveyTargetConfig> read_specs(const std::string& path) {
  std::ifstream file;
  std::istream* in = &std::cin;
  if (path != "-") {
    file.open(path);
    if (!file) throw std::runtime_error{"survey_service: cannot read " + path};
    in = &file;
  }
  std::vector<core::SurveyTargetConfig> out;
  std::string line;
  while (std::getline(*in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields{line};
    core::SurveyTargetConfig target;
    if (!(fields >> target.name)) continue;  // blank / comment-only line
    double fwd = 0.0;
    double rev = 0.0;
    if (fields >> fwd) target.forward.swap_probability = fwd;
    if (fields >> rev) target.reverse.swap_probability = rev;
    target.remote.behavior.immediate_ack_on_hole_fill = true;
    target.tests = {core::TestSpec{"single-connection"}, core::TestSpec{"syn"}};
    out.push_back(std::move(target));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using util::Duration;

  std::int64_t targets = 8;
  std::int64_t rounds = 1;
  std::int64_t samples = 15;
  std::int64_t seed = 11;
  std::int64_t workers = 0;
  std::int64_t batch = 64;
  std::int64_t snapshot_every = 0;
  std::int64_t narrate_every = -1;
  double reordering_fraction = 0.5;
  bool no_steal = false;
  bool lean = false;
  bool resume = false;
  std::string admit_path;
  std::string jsonl_path;
  std::string checkpoint_path;

  util::Flags flags{"survey_service", "resident survey service: continuous admission, "
                    "work-stealing execution, live merged snapshots"};
  flags.add_i64("targets", &targets, "synthetic population size (ignored with --admit)");
  flags.add_i64("rounds", &rounds, "measurement cycles per target");
  flags.add_i64("samples", &samples, "samples per measurement (paper: 15)");
  flags.add_i64("seed", &seed, "service seed (identity + population)");
  flags.add_i64("workers", &workers, "worker threads (0 = hardware)");
  flags.add_i64("batch", &batch, "admission batch size");
  flags.add_i64("snapshot-every", &snapshot_every,
                "print a live service_snapshot JSONL record every N completions (0 = off)");
  flags.add_i64("narrate-every", &narrate_every,
                "narrate every Nth completion (0 = quiet, -1 = auto: full detail up to "
                "10k targets, sampled above)");
  flags.add_double("reordering-fraction", &reordering_fraction,
                   "fraction of synthetic paths that reorder at all");
  flags.add_bool("no-steal", &no_steal, "disable work stealing (per-worker FIFO fallback)");
  flags.add_bool("lean", &lean,
                 "drop per-measurement logs (metrics/snapshots stay exact; no --jsonl)");
  flags.add_bool("resume", &resume, "adopt completed targets from --checkpoint");
  flags.add_string("admit", &admit_path,
                   "admit targets from this spec file ('-' = stdin) instead of synthesizing");
  flags.add_string("jsonl", &jsonl_path, "write the canonical merged JSONL here after drain");
  flags.add_string("checkpoint", &checkpoint_path,
                   "durably record completed targets here (background saves)");
  if (!flags.parse(argc, argv)) return 1;
  if (targets < 1 || rounds < 1 || samples < 1 || workers < 0 || batch < 1) {
    std::fprintf(stderr, "survey_service: --targets/--rounds/--samples/--batch must be >= 1 "
                         "and --workers >= 0\n");
    return 1;
  }
  if (resume && checkpoint_path.empty()) {
    std::fprintf(stderr, "survey_service: --resume needs --checkpoint=PATH\n");
    return 1;
  }
  if (lean && !jsonl_path.empty()) {
    std::fprintf(stderr, "survey_service: --lean drops the logs --jsonl needs\n");
    return 1;
  }

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  std::vector<core::SurveyTargetConfig> population;
  try {
    population = admit_path.empty()
                     ? synthesize(targets, static_cast<std::uint64_t>(seed), reordering_fraction)
                     : read_specs(admit_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  service::SurveyServiceConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(seed);
  cfg.workers = static_cast<std::size_t>(workers);
  cfg.steal = !no_steal;
  cfg.run.samples = static_cast<int>(samples);
  cfg.rounds = static_cast<int>(rounds);
  cfg.between = Duration::seconds(1);
  cfg.retain_results = !lean;
  cfg.checkpoint_path = checkpoint_path;

  report::NarratingSink narrator{report::NarrationPolicy::from_flag(
      narrate_every, population.size(), 2 * population.size())};
  std::atomic<std::uint64_t> completions{0};
  service::SurveyService* service_ptr = nullptr;
  cfg.on_target_complete = [&](const service::TargetDone& done) {
    if (narrator.tick()) {
      std::printf("  done #%-8zu %-12.*s %zu measurements by t=%.1fs%s\n", done.index,
                  static_cast<int>(done.name.size()), done.name.data(), done.measurements,
                  done.virtual_end.seconds_f(), done.attempts == 0 ? "  (adopted)" : "");
    }
    const std::uint64_t n = completions.fetch_add(1, std::memory_order_relaxed) + 1;
    if (snapshot_every > 0 && n % static_cast<std::uint64_t>(snapshot_every) == 0 &&
        service_ptr != nullptr) {
      // A live mid-run snapshot, taken from a worker thread while its
      // siblings keep completing — the lock-light fold in action.
      std::printf("%s\n", service_ptr->snapshot().to_json().dump().c_str());
    }
  };

  service::SurveyService service{std::move(cfg)};
  service_ptr = &service;

  if (resume) {
    const core::SurveyCheckpoint cp = core::SurveyCheckpoint::load(checkpoint_path);
    std::printf("resuming: %zu targets recorded in %s (%zu torn records dropped)\n",
                cp.completed_count(), checkpoint_path.c_str(), cp.torn_records());
    service.restore(cp);
  }

  std::printf("service up: %zu workers, stealing %s; admitting %zu targets in batches of %lld\n",
              service.scheduler_stats().executed_by_worker.size(), no_steal ? "off" : "on",
              population.size(), static_cast<long long>(batch));

  const auto wall_start = std::chrono::steady_clock::now();
  std::size_t admitted = 0;
  while (admitted < population.size() && !g_stop.load(std::memory_order_relaxed)) {
    const std::size_t n =
        std::min(static_cast<std::size_t>(batch), population.size() - admitted);
    std::vector<core::SurveyTargetConfig> chunk;
    chunk.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      chunk.push_back(std::move(population[admitted + i]));
    }
    service.admit(std::move(chunk));
    admitted += n;
  }
  if (admitted < population.size()) {
    std::printf("admission interrupted: %zu of %zu targets admitted; draining...\n", admitted,
                population.size());
  }

  try {
    service.drain();
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "survey_service: broken plan: %s\n", e.what());
    return 1;
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  const service::SurveyService::Snapshot final_snap = service.snapshot();
  std::printf("%s\n", final_snap.to_json().dump().c_str());
  if (service.degraded()) {
    std::printf("DEGRADED: %zu target(s) failed every attempt\n",
                service.failed_target_indices().size());
  }
  const util::WorkStealingPool::Stats sched = service.scheduler_stats();
  std::printf("drained: %zu targets, %zu measurements, virtual t=%.1fs (%.2fs wall)\n",
              service.completed(), final_snap.measurements, final_snap.virtual_end.seconds_f(),
              wall_s);
  std::printf("scheduler: %llu jobs executed, %llu stolen (%llu probes)\n",
              static_cast<unsigned long long>(sched.executed),
              static_cast<unsigned long long>(sched.stolen),
              static_cast<unsigned long long>(sched.steal_attempts));

  if (!jsonl_path.empty()) {
    // Canonical merged emission, written crash-safely — byte-identical to
    // the equivalent batch run's artifact.
    report::AtomicJsonlFile file{jsonl_path};
    service.emit_jsonl(file.writer());
    const std::size_t lines = file.writer().lines_written();
    file.commit();
    std::printf("streamed %zu JSONL records to %s\n", lines, jsonl_path.c_str());
  }
  service.stop();
  return 0;
}
