// loadbalancer_demo: the §III-C/§III-D story in one run.
//
// A consumer site puts four backends behind a transparent per-flow load
// balancer. The dual-connection test's two connections usually hash to
// different backends with unrelated IPID counters — the validator must
// refuse to produce (spurious) measurements. The SYN test's two probe
// packets share one four-tuple, always land on the same backend, and keep
// working.
//
//   $ loadbalancer_demo [--backends=4] [--fwd-swap=0.15]
#include <cstdio>

#include "core/test_registry.hpp"
#include "core/testbed.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace reorder;

  std::int64_t backends = 4;
  double fwd_swap = 0.15;
  std::int64_t seed = 35;
  util::Flags flags{"loadbalancer_demo", "dual vs SYN test behind a load balancer"};
  flags.add_i64("backends", &backends, "backends behind the balancer");
  flags.add_double("fwd-swap", &fwd_swap, "forward swap probability");
  flags.add_i64("seed", &seed, "simulation seed");
  if (!flags.parse(argc, argv)) return 1;

  core::TestbedConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(seed);
  cfg.backends = static_cast<std::size_t>(backends);
  cfg.forward.swap_probability = fwd_swap;
  core::Testbed bed{cfg};

  std::printf("site %s: %lld backends behind a per-flow load balancer\n",
              bed.remote_addr().to_string().c_str(), static_cast<long long>(backends));
  std::printf("true forward swap probability: %.3f\n\n", fwd_swap);

  // 1. The dual-connection test validates IPIDs before trusting them.
  //    create_as<> keeps the concrete type for the validation detail.
  auto dual = core::TestRegistry::global().create_as<core::DualConnectionTest>(
      bed.probe(), bed.remote_addr(), core::TestSpec{"dual-connection"});
  core::TestRunConfig run;
  run.samples = 200;
  // Pace samples beyond the shaper's hold window so each pair sees the
  // undisturbed swap probability.
  run.sample_spacing = util::Duration::millis(120);
  const auto dual_result = bed.run_sync(*dual, run);
  std::printf("[dual-connection]\n");
  if (dual_result.admissible) {
    std::printf("  both connections hashed to one backend (it happens!) — rate %.3f\n",
                dual_result.forward.rate_or(0.0));
  } else {
    std::printf("  ruled out: %s\n", dual_result.note.c_str());
    const auto& v = dual->last_validation();
    std::printf("  validator detail: within-connection increments %.0f%%, "
                "between-connection %.0f%%\n",
                100 * v.within_increase_fraction, 100 * v.between_increase_fraction);
    std::printf("  (per-connection counters look healthy; across connections they are\n"
                "   unrelated — the Fig. 3 signature)\n");
  }

  // 2. The SYN test is immune by construction.
  auto syn = core::make_registered_test(bed.probe(), bed.remote_addr(), core::TestSpec{"syn"});
  const auto syn_result = bed.run_sync(*syn, run);
  std::printf("\n[syn]\n");
  std::printf("  forward rate: %.3f (true %.3f) from %llu usable samples\n",
              syn_result.forward.rate_or(0.0), fwd_swap,
              static_cast<unsigned long long>(syn_result.forward.usable()));
  std::printf("  reverse rate: %.3f\n", syn_result.reverse.rate_or(0.0));

  // 3. Show the balancer's flow counts so the mechanism is visible.
  if (auto* lb = bed.balancer()) {
    std::printf("\nbalancer flow distribution:\n");
    for (std::size_t i = 0; i < lb->backend_count(); ++i) {
      std::printf("  backend %zu: %llu packets\n", i,
                  static_cast<unsigned long long>(lb->forwarded_to(i)));
    }
  }
  return 0;
}
