// Quickstart: measure one-way reordering to a (simulated) TCP server.
//
// Builds the canonical testbed — a probe host and a remote server joined
// by an emulated path that swaps 10% of adjacent packet pairs in the
// forward direction — then runs the paper's single-connection test and
// prints per-direction verdict counts and rates through the report
// layer's table emitter. With --jsonl=PATH the same result additionally
// streams out as JSON Lines via a ResultSink (the machine-readable side
// of the pipeline).
//
//   $ quickstart [--swap-prob=0.1] [--samples=50] [--seed=1] [--jsonl=run.jsonl]
#include <cstdio>
#include <fstream>

#include "core/result_sink.hpp"
#include "core/test_registry.hpp"
#include "core/testbed.hpp"
#include "metrics/engine.hpp"
#include "report/sinks.hpp"
#include "report/table.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace reorder;

  double swap_prob = 0.10;
  std::int64_t samples = 50;
  std::int64_t seed = 1;
  std::string jsonl_path;
  util::Flags flags{"quickstart", "first packet-reordering measurement"};
  flags.add_double("swap-prob", &swap_prob, "forward-path adjacent swap probability");
  flags.add_i64("samples", &samples, "measurement samples to take");
  flags.add_i64("seed", &seed, "simulation seed");
  flags.add_string("jsonl", &jsonl_path, "also stream the result to this JSONL file");
  if (!flags.parse(argc, argv)) return 1;

  // 1. Build the world: probe <-> path <-> server.
  core::TestbedConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(seed);
  cfg.forward.swap_probability = swap_prob;
  core::Testbed bed{cfg};

  // 2. Point a measurement technique at the server (registry-driven; any
  //    technique name works here — try "syn" or "dual-connection").
  auto test = core::make_registered_test(bed.probe(), bed.remote_addr(),
                                         core::TestSpec{"single-connection"});

  // 3. Run it.
  core::TestRunConfig run;
  run.samples = static_cast<int>(samples);
  const core::TestRunResult result = bed.run_sync(*test, run);
  if (!result.admissible) {
    std::printf("measurement failed: %s\n", result.note.c_str());
    return 1;
  }

  // 4. Read the verdicts.
  std::printf("test: %s, %zu samples against %s\n", result.test_name.c_str(),
              result.samples.size(), bed.remote_addr().to_string().c_str());
  report::Table table{std::vector<report::Column>{{"direction", report::Align::kLeft},
                                                  {"in-order", report::Align::kRight},
                                                  {"reordered", report::Align::kRight},
                                                  {"ambiguous", report::Align::kRight},
                                                  {"lost", report::Align::kRight},
                                                  {"rate", report::Align::kRight},
                                                  {"95% CI", report::Align::kLeft}}};
  const auto add_row = [&table](const char* dir, const core::ReorderEstimate& e) {
    const auto ci = e.proportion();
    table.row({dir, report::integer(e.in_order), report::integer(e.reordered),
               report::integer(e.ambiguous), report::integer(e.lost),
               report::fixed(e.rate_or(0.0), 3),
               "[" + report::fixed(ci.lower, 3) + ", " + report::fixed(ci.upper, 3) + "]"});
  };
  add_row("forward", result.forward);
  add_row("reverse", result.reverse);
  table.print();

  // 5. Optionally stream the same result machine-readably: publish_result
  //    feeds any ResultSink the exact event stream a survey would — here
  //    the JSONL sink and a metrics engine side by side, with the
  //    engine's snapshot appended as a `metrics` record.
  if (!jsonl_path.empty()) {
    std::ofstream file{jsonl_path};
    if (!file) {
      std::fprintf(stderr, "cannot open %s for writing\n", jsonl_path.c_str());
      return 1;
    }
    report::JsonlWriter writer{file};
    report::JsonlResultSink sink{writer};
    metrics::MetricEngine engine;
    metrics::EngineSink engine_sink{engine};
    core::SinkFanout fanout;
    fanout.add(sink);
    fanout.add(engine_sink);
    core::publish_result(fanout, bed.remote_addr().to_string(), result.test_name,
                         util::TimePoint::epoch(), result);
    engine.emit_jsonl(writer);
    std::printf("\nstreamed %zu JSONL records to %s\n", writer.lines_written(),
                jsonl_path.c_str());
  }

  std::printf("\nconfigured forward swap probability was %.3f — the forward rate above\n"
              "should sit inside its confidence interval.\n",
              swap_prob);
  return 0;
}
