// Quickstart: measure one-way reordering to a (simulated) TCP server.
//
// Builds the canonical testbed — a probe host and a remote server joined
// by an emulated path that swaps 10% of adjacent packet pairs in the
// forward direction — then runs the paper's single-connection test and
// prints per-direction verdict counts and rates.
//
//   $ quickstart [--swap-prob=0.1] [--samples=50] [--seed=1]
#include <cstdio>

#include "core/test_registry.hpp"
#include "core/testbed.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace reorder;

  double swap_prob = 0.10;
  std::int64_t samples = 50;
  std::int64_t seed = 1;
  util::Flags flags{"quickstart", "first packet-reordering measurement"};
  flags.add_double("swap-prob", &swap_prob, "forward-path adjacent swap probability");
  flags.add_i64("samples", &samples, "measurement samples to take");
  flags.add_i64("seed", &seed, "simulation seed");
  if (!flags.parse(argc, argv)) return 1;

  // 1. Build the world: probe <-> path <-> server.
  core::TestbedConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(seed);
  cfg.forward.swap_probability = swap_prob;
  core::Testbed bed{cfg};

  // 2. Point a measurement technique at the server (registry-driven; any
  //    technique name works here — try "syn" or "dual-connection").
  auto test = core::make_registered_test(bed.probe(), bed.remote_addr(),
                                         core::TestSpec{"single-connection"});

  // 3. Run it.
  core::TestRunConfig run;
  run.samples = static_cast<int>(samples);
  const core::TestRunResult result = bed.run_sync(*test, run);
  if (!result.admissible) {
    std::printf("measurement failed: %s\n", result.note.c_str());
    return 1;
  }

  // 4. Read the verdicts.
  std::printf("test: %s, %zu samples against %s\n", result.test_name.c_str(),
              result.samples.size(), bed.remote_addr().to_string().c_str());
  const auto show = [](const char* dir, const core::ReorderEstimate& e) {
    const auto ci = e.proportion();
    std::printf("  %-8s in-order=%-4d reordered=%-4d ambiguous=%-4d lost=%-4d"
                "  rate=%.3f  [%.3f, %.3f]\n",
                dir, e.in_order, e.reordered, e.ambiguous, e.lost, e.rate(), ci.lower, ci.upper);
  };
  show("forward", result.forward);
  show("reverse", result.reverse);
  std::printf("\nconfigured forward swap probability was %.3f — the forward rate above\n"
              "should sit inside its confidence interval.\n",
              swap_prob);
  return 0;
}
