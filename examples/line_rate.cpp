// line_rate: drive the ingest subsystem at speed and print what it did.
//
// Renders a scenario's monitor-level traffic model (default: the bursty
// interrupt-coalescing shape) into a pre-materialized arrival stream,
// then replays it through the threaded pipeline — producer thread ->
// SoA batches -> lock-free SPSC ring -> consumer thread draining the
// batched fast paths of BOTH engines (exact per-flow SequenceEngine and
// the bounded always-on MonitorEngine). Prints the achieved arrivals/s
// and the transfer accounting, then the engines' own summaries.
//
// With --ingest-shards=N (N >= 1) the stream instead runs through the
// multi-queue ParallelIngestPipeline: the dispatcher splits batches by
// flow hash across N consumer shards, each owning private engine shards,
// and the printed/emitted summaries are the cross-shard folds — byte-
// identical to the single-consumer mode's records, which is the whole
// point of flow pinning.
//
//   $ line_rate [--scenario=interrupt-coalescing] [--seed=1]
//               [--flows=32] [--packets=512] [--repeat=8]
//               [--batch=1024] [--ring=64] [--policy=spin|drop]
//               [--stall-us=0] [--ingest-shards=0] [--jsonl=<path>]
//
// With REORDER_BENCH_JSONL_DIR set (the bench-smoke convention) the
// {"type":"ingest"}, {"type":"monitor"} and {"type":"sequences"} records
// land in $REORDER_BENCH_JSONL_DIR/line_rate.jsonl.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "ingest/parallel_pipeline.hpp"
#include "ingest/pipeline.hpp"
#include "monitor/differential.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace reorder;

  std::int64_t seed = 1;
  std::int64_t flows = 32;
  std::int64_t packets = 512;
  std::int64_t repeat = 8;
  std::int64_t batch = 1024;
  std::int64_t ring = 64;
  std::int64_t stall_us = 0;
  std::int64_t ingest_shards = 0;
  std::string scenario = "interrupt-coalescing";
  std::string policy = "spin";
  std::string jsonl_path;
  util::Flags flags{"line_rate", "threaded SoA-batch ingest of a scenario arrival stream"};
  flags.add_i64("seed", &seed, "traffic model seed");
  flags.add_i64("flows", &flows, "concurrent flows");
  flags.add_i64("packets", &packets, "packets per flow");
  flags.add_i64("repeat", &repeat, "stream replays per run (stretches the measurement)");
  flags.add_i64("batch", &batch, "arrivals per SoA batch");
  flags.add_i64("ring", &ring, "ring capacity in batches");
  flags.add_i64("stall-us", &stall_us, "consumer stall per batch (forces backpressure)");
  flags.add_i64("ingest-shards", &ingest_shards,
                "0 = single-consumer pipeline; N >= 1 = flow-hash sharded "
                "parallel pipeline with N consumer threads");
  flags.add_string("scenario", &scenario, "core scenario name for the traffic model");
  flags.add_string("policy", &policy, "backpressure when the ring fills: spin | drop");
  flags.add_string("jsonl", &jsonl_path, "also write ingest/monitor/sequences JSONL here");
  if (!flags.parse(argc, argv)) return 1;
  if (policy != "spin" && policy != "drop") {
    std::fprintf(stderr, "line_rate: --policy must be spin or drop\n");
    return 1;
  }

  monitor::TrafficOptions traffic;
  traffic.flows = static_cast<std::size_t>(flows);
  traffic.packets_per_flow = static_cast<std::size_t>(packets);
  const std::vector<ingest::Arrival> stream = ingest::from_monitor(
      monitor::scenario_arrivals(scenario, static_cast<std::uint64_t>(seed), traffic));

  // One Source over `repeat` replays of the rendered stream: the producer
  // re-reads the same arrivals so the measurement runs long enough to
  // mean something without re-rendering traffic.
  std::size_t replays = 0;
  std::size_t cursor = 0;
  const ingest::IngestPipeline::Source source = [&](ingest::Arrival* out, std::size_t max) {
    if (cursor == stream.size()) {
      if (++replays >= static_cast<std::size_t>(repeat)) return std::size_t{0};
      cursor = 0;
    }
    const std::size_t n = std::min(max, stream.size() - cursor);
    for (std::size_t i = 0; i < n; ++i) out[i] = stream[cursor + i];
    cursor += n;
    return n;
  };
  const ingest::Backpressure backpressure =
      policy == "drop" ? ingest::Backpressure::kDrop : ingest::Backpressure::kSpin;

  std::printf("line-rate ingest: %s (seed %lld), %zu arrivals x%lld, policy %s\n",
              scenario.c_str(), static_cast<long long>(seed), stream.size(),
              static_cast<long long>(repeat), policy.c_str());

  const auto print_rate = [](std::int64_t wall_ns, std::uint64_t consumed,
                             std::uint64_t spin_waits) {
    const double secs = static_cast<double>(wall_ns) / 1e9;
    const double rate = secs > 0.0 ? static_cast<double>(consumed) / secs : 0.0;
    std::printf("  wall %.3f ms  ->  %.1f M arrivals/s  (spin waits %llu)\n", secs * 1e3,
                rate / 1e6, static_cast<unsigned long long>(spin_waits));
  };

  if (ingest_shards >= 1) {
    // Multi-queue mode: flow-hash dispatcher + N consumer shards, each
    // with private engine shards; summaries below are the folded views.
    ingest::ParallelPipelineConfig config;
    config.shards = static_cast<std::size_t>(ingest_shards);
    config.batch_capacity = static_cast<std::size_t>(batch);
    config.ring_batches = static_cast<std::size_t>(ring);
    config.backpressure = backpressure;
    config.consumer_stall = util::Duration::micros(stall_us);
    config.monitor = true;
    ingest::ParallelIngestPipeline pipeline{config};
    const ingest::ParallelPipelineStats& stats = pipeline.run(source);
    pipeline.flush();

    std::printf("  shards %zu: produced %llu  consumed %llu  dropped %llu  "
                "(sub-batches %llu from %llu parents, imbalance %.3f)\n",
                pipeline.shards(),
                static_cast<unsigned long long>(stats.arrivals_produced),
                static_cast<unsigned long long>(stats.arrivals_consumed),
                static_cast<unsigned long long>(stats.arrivals_dropped),
                static_cast<unsigned long long>(stats.dispatcher.sub_batches),
                static_cast<unsigned long long>(stats.dispatcher.parent_batches),
                stats.dispatcher.imbalance_ratio);
    for (std::size_t s = 0; s < pipeline.shards(); ++s) {
      const ingest::ShardStats& shard = stats.shards[s];
      std::printf("    shard %zu: dispatched %llu  consumed %llu  dropped %llu  "
                  "(flows %zu)\n",
                  s, static_cast<unsigned long long>(shard.arrivals_dispatched),
                  static_cast<unsigned long long>(shard.arrivals_consumed),
                  static_cast<unsigned long long>(shard.arrivals_dropped),
                  pipeline.shard_sequences(s).flow_count());
    }
    print_rate(stats.wall_ns, stats.arrivals_consumed, stats.spin_waits);
    const report::Json seq_summary = pipeline.sequences_json();
    const monitor::MonitorEngine merged_monitor = pipeline.merged_monitor();
    std::printf("  sequences: %s flows (folded)\n",
                seq_summary.find("flows")->dump().c_str());
    std::printf("  monitor:   %s\n", merged_monitor.to_json().dump().c_str());

    const auto write_jsonl = [&](const std::string& path) {
      std::ofstream out{path};
      if (!out) {
        std::fprintf(stderr, "line_rate: cannot open %s\n", path.c_str());
        return false;
      }
      report::JsonlWriter writer{out};
      pipeline.emit_jsonl(writer);
      merged_monitor.emit_jsonl(writer);
      report::Json seq_record;
      seq_record.set("type", "sequences");
      seq_record.set("scenario", scenario);
      seq_record.set("summary", seq_summary);
      writer.write(seq_record);
      return true;
    };
    if (!jsonl_path.empty() && !write_jsonl(jsonl_path)) return 1;
    if (const char* dir = std::getenv("REORDER_BENCH_JSONL_DIR")) {
      const std::string path = std::string{dir} + "/line_rate.jsonl";
      if (write_jsonl(path)) std::printf("  wrote 3 records to %s\n", path.c_str());
    }
    return 0;
  }

  ingest::SequenceEngine sequences;
  monitor::MonitorEngine engine;
  ingest::PipelineConfig config;
  config.batch_capacity = static_cast<std::size_t>(batch);
  config.ring_batches = static_cast<std::size_t>(ring);
  config.backpressure = backpressure;
  config.consumer_stall = util::Duration::micros(stall_us);
  ingest::IngestPipeline pipeline{config, &sequences, &engine};

  const ingest::PipelineStats& stats = pipeline.run(source);
  sequences.flush();
  engine.flush();

  std::printf("  produced %llu  consumed %llu  dropped %llu  (batches %llu/%llu/%llu)\n",
              static_cast<unsigned long long>(stats.arrivals_produced),
              static_cast<unsigned long long>(stats.arrivals_consumed),
              static_cast<unsigned long long>(stats.arrivals_dropped),
              static_cast<unsigned long long>(stats.batches_produced),
              static_cast<unsigned long long>(stats.batches_consumed),
              static_cast<unsigned long long>(stats.batches_dropped));
  print_rate(stats.wall_ns, stats.arrivals_consumed, stats.spin_waits);
  std::printf("  sequences: %llu arrivals over %zu flows\n",
              static_cast<unsigned long long>(sequences.arrivals()), sequences.flow_count());
  std::printf("  monitor:   %s\n", engine.to_json().dump().c_str());

  const auto write_jsonl = [&](const std::string& path) {
    std::ofstream out{path};
    if (!out) {
      std::fprintf(stderr, "line_rate: cannot open %s\n", path.c_str());
      return false;
    }
    report::JsonlWriter writer{out};
    pipeline.emit_jsonl(writer);
    engine.emit_jsonl(writer);
    report::Json seq_record;
    seq_record.set("type", "sequences");
    seq_record.set("scenario", scenario);
    seq_record.set("summary", sequences.to_json());
    writer.write(seq_record);
    return true;
  };
  if (!jsonl_path.empty() && !write_jsonl(jsonl_path)) return 1;
  if (const char* dir = std::getenv("REORDER_BENCH_JSONL_DIR")) {
    const std::string path = std::string{dir} + "/line_rate.jsonl";
    if (write_jsonl(path)) std::printf("  wrote 3 records to %s\n", path.c_str());
  }
  return 0;
}
