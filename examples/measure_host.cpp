// measure_host: run any subset of the paper's four techniques against a
// configurable simulated host, mirroring how the real tool would be
// pointed at an arbitrary TCP server. Exposes the host knobs that matter
// to the techniques (IPID policy, second-SYN behaviour, delayed-ACK
// handling, load balancing) and the path knobs (swap rates, loss).
//
//   $ measure_host --tests=single,dual,syn,data --ipid=random
//       --second-syn=ignore --backends=4 --fwd-swap=0.05 --rev-swap=0.02
//       --loss=0.01 --pcap=/tmp/run.pcap
#include <cstdio>
#include <sstream>

#include "core/test_registry.hpp"
#include "core/testbed.hpp"
#include "report/table.hpp"
#include "trace/pcap_writer.hpp"
#include "util/flags.hpp"

namespace {

using namespace reorder;

tcpip::IpidPolicy parse_ipid(const std::string& s) {
  if (s == "global") return tcpip::IpidPolicy::kGlobalCounter;
  if (s == "per-dest") return tcpip::IpidPolicy::kPerDestination;
  if (s == "random") return tcpip::IpidPolicy::kRandom;
  if (s == "zero") return tcpip::IpidPolicy::kConstantZero;
  if (s == "random-inc") return tcpip::IpidPolicy::kRandomIncrement;
  std::fprintf(stderr, "unknown --ipid '%s' (global|per-dest|random|zero|random-inc)\n",
               s.c_str());
  std::exit(1);
}

tcpip::SecondSynBehavior parse_second_syn(const std::string& s) {
  if (s == "spec") return tcpip::SecondSynBehavior::kSpecCompliant;
  if (s == "rst") return tcpip::SecondSynBehavior::kAlwaysRst;
  if (s == "dual-rst") return tcpip::SecondSynBehavior::kDualRst;
  if (s == "ignore") return tcpip::SecondSynBehavior::kIgnore;
  std::fprintf(stderr, "unknown --second-syn '%s' (spec|rst|dual-rst|ignore)\n", s.c_str());
  std::exit(1);
}

void print_result(const core::TestRunResult& result) {
  std::printf("\n[%s]\n", result.test_name.c_str());
  if (!result.admissible) {
    std::printf("  not admissible on this host: %s\n", result.note.c_str());
    return;
  }
  report::Table table{std::vector<report::Column>{{"direction", report::Align::kLeft},
                                                  {"rate", report::Align::kRight},
                                                  {"in-order", report::Align::kRight},
                                                  {"reordered", report::Align::kRight},
                                                  {"ambiguous", report::Align::kRight},
                                                  {"lost", report::Align::kRight}}};
  const auto show = [&table](const char* dir, const core::ReorderEstimate& e) {
    if (e.total() == 0) return;
    // rate() is empty when every sample was ambiguous/lost; render that
    // honestly instead of as a suspiciously clean 0.0000.
    const auto rate = e.rate();
    table.row({dir, rate ? report::fixed(*rate, 4) : "no data", report::integer(e.in_order),
               report::integer(e.reordered), report::integer(e.ambiguous),
               report::integer(e.lost)});
  };
  show("forward", result.forward);
  show("reverse", result.reverse);
  if (table.rows() > 0) table.print();
  if (!result.note.empty()) std::printf("  note: %s\n", result.note.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string tests = "single,dual,syn,data";
  std::string ipid = "global";
  std::string second_syn = "rst";
  std::string pcap_path;
  double fwd_swap = 0.05;
  double rev_swap = 0.02;
  double loss = 0.0;
  std::int64_t backends = 1;
  std::int64_t samples = 50;
  std::int64_t seed = 7;
  bool ack_hole_fill = false;

  util::Flags flags{"measure_host", "run reordering tests against a configurable host"};
  flags.add_string("tests", &tests, "comma list: single,single-inorder,dual,syn,data");
  flags.add_string("ipid", &ipid, "host IPID policy (global|per-dest|random|zero|random-inc)");
  flags.add_string("second-syn", &second_syn, "second-SYN behaviour (spec|rst|dual-rst|ignore)");
  flags.add_string("pcap", &pcap_path, "write the remote-ingress trace to this pcap file");
  flags.add_double("fwd-swap", &fwd_swap, "forward-path swap probability");
  flags.add_double("rev-swap", &rev_swap, "reverse-path swap probability");
  flags.add_double("loss", &loss, "loss probability (both directions)");
  flags.add_i64("backends", &backends, "hosts behind the load balancer (1 = none)");
  flags.add_i64("samples", &samples, "samples per test");
  flags.add_i64("seed", &seed, "simulation seed");
  flags.add_bool("ack-hole-fill", &ack_hole_fill, "host ACKs hole-filling segments immediately");
  if (!flags.parse(argc, argv)) return 1;

  core::TestbedConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(seed);
  cfg.backends = static_cast<std::size_t>(backends);
  cfg.forward.swap_probability = fwd_swap;
  cfg.reverse.swap_probability = rev_swap;
  cfg.forward.loss_probability = loss;
  cfg.reverse.loss_probability = loss;
  cfg.remote = core::default_remote_config();
  cfg.remote.ipid_policy = parse_ipid(ipid);
  cfg.remote.behavior.second_syn = parse_second_syn(second_syn);
  cfg.remote.behavior.immediate_ack_on_hole_fill = ack_hole_fill;
  core::Testbed bed{cfg};

  std::printf("host %s: ipid=%s second-syn=%s backends=%lld\n",
              bed.remote_addr().to_string().c_str(), ipid.c_str(), second_syn.c_str(),
              static_cast<long long>(backends));
  std::printf("path: fwd-swap=%.3f rev-swap=%.3f loss=%.3f\n", fwd_swap, rev_swap, loss);

  core::TestRunConfig run;
  run.samples = static_cast<int>(samples);

  const auto& registry = core::TestRegistry::global();
  std::stringstream list{tests};
  std::string name;
  while (std::getline(list, name, ',')) {
    std::string canonical;
    try {
      canonical = registry.canonical_name(name);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    if (canonical == "dual-connection") {
      // Keep the concrete type so the IPID validation detail is printable.
      auto dual = registry.create_as<core::DualConnectionTest>(bed.probe(), bed.remote_addr(),
                                                               core::TestSpec{canonical});
      print_result(bed.run_sync(*dual, run));
      const auto& v = dual->last_validation();
      std::printf("  ipid validation: %s (between+=%.2f within+=%.2f domination=%.2f)\n",
                  to_string(v.verdict).c_str(), v.between_increase_fraction,
                  v.within_increase_fraction, v.domination_fraction);
      continue;
    }
    auto test = registry.create(bed.probe(), bed.remote_addr(), core::TestSpec{canonical});
    print_result(bed.run_sync(*test, run));
  }

  if (!pcap_path.empty()) {
    if (trace::write_pcap_file(pcap_path, bed.remote_ingress_trace())) {
      std::printf("\nwrote %zu captured packets to %s\n", bed.remote_ingress_trace().size(),
                  pcap_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", pcap_path.c_str());
    }
  }
  return 0;
}
