// time_domain: measure the reordering process as a function of the gap
// between the two packets of each sample (the paper's §IV-C / Figure 7
// methodology), then use the resulting distribution to predict how
// differently sized packets would fare — without building a new test for
// each protocol, which is exactly the argument the paper makes for
// distribution measurements over scalar summaries.
//
//   $ time_domain --max-gap-us=300 --step-us=10 --samples=400
#include <cstdio>

#include "core/metrics.hpp"
#include "core/scenario.hpp"
#include "report/table.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace reorder;
  using util::Duration;

  std::int64_t max_gap_us = 300;
  std::int64_t step_us = 10;
  std::int64_t samples = 400;
  std::int64_t seed = 21;

  util::Flags flags{"time_domain", "reordering probability vs inter-packet gap"};
  flags.add_i64("max-gap-us", &max_gap_us, "largest gap to probe, microseconds");
  flags.add_i64("step-us", &step_us, "gap increment, microseconds");
  flags.add_i64("samples", &samples, "samples per gap point");
  flags.add_i64("seed", &seed, "simulation seed");
  if (!flags.parse(argc, argv)) return 1;

  // The canonical striped-links scenario (§IV-C's process), with the gap
  // sweep and per-point sample count taken from the flags.
  core::ScenarioSpec spec = core::scenarios::striped_links(static_cast<std::uint64_t>(seed));
  spec.run.samples = static_cast<int>(samples);
  spec.stop_on_inadmissible = true;
  spec.gap_sweep.clear();
  for (std::int64_t gap = 0; gap <= max_gap_us; gap += step_us) {
    spec.gap_sweep.push_back(Duration::micros(gap));
  }
  spec.between_measurements = Duration::millis(1);
  // The scenario runner streams the sweep into its metrics engine; the
  // per-gap profile is a snapshot read of the incremental accumulators.
  const core::ScenarioResult sweep = core::run_scenario(spec);
  for (const auto& m : sweep.measurements) {
    if (!m.result.admissible) {
      std::printf("inadmissible: %s\n", m.result.note.c_str());
      return 1;
    }
  }

  const core::TimeDomainProfile profile = sweep.time_domain("dual-connection");
  report::Table table{std::vector<report::Column>{{"gap(us)", report::Align::kLeft},
                                                  {"rate", report::Align::kRight},
                                                  {"histogram", report::Align::kLeft}}};
  for (const auto& point : profile.points()) {
    const double rate = point.estimate.rate_or(0.0);
    table.row({report::integer(point.gap.us()), report::fixed(rate, 4),
               std::string(static_cast<std::size_t>(rate * 250), '#')});
  }
  table.print();

  // Prediction: leading-edge spacing added by serialization of different
  // packet sizes on a 100 Mbps access link.
  std::printf("\npredicted reordering rate by packet size (100 Mbps serialization):\n");
  report::Table prediction =
      report::Table::with_headers({"size(bytes)", "spacing(us)", "pred. rate"});
  for (const int bytes : {40, 128, 256, 512, 1024, 1500}) {
    const double spacing_us = bytes * 8.0 / 100.0;  // bits / (bits/us)
    const auto rate = profile.interpolate_rate(Duration::from_seconds_f(spacing_us * 1e-6));
    prediction.row({report::integer(bytes), report::fixed(spacing_us, 1),
                    report::fixed(rate.value_or(0.0), 4)});
  }
  prediction.print();
  std::printf("\n(the paper's §IV-C conclusion: full-sized data packets are less likely\n"
              " to be reordered than compressed streams of minimum-sized packets)\n");
  return 0;
}
