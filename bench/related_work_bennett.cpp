// Reproduces the related-work baseline the paper critiques in §II:
// Bennett, Partridge & Shectman's ICMP ping-burst methodology ("Packet
// Reordering is not Pathological Network Behavior", ToN 1999).
//
// Their headline numbers: for bursts of five 56-byte ICMP packets, over
// 90% of bursts to their exchange-point path saw at least one reordering
// event; bursts of 100 packets behaved similarly. The paper's two
// critiques, both demonstrated below:
//
//  1. direction ambiguity — a ping burst cannot tell forward from reverse
//     reordering, so asymmetric paths are mischaracterized, while the
//     paper's one-way tests attribute the direction correctly;
//  2. burst-size sensitivity — "fraction of bursts with >= 1 event" is a
//     function of the burst length, not just of the path;
//  3. (operationally) ICMP rate limiting silently starves the measurement.
#include <cstdio>

#include "bench_common.hpp"
#include "core/ping_burst_adapter.hpp"

namespace {

using namespace reorder;
using namespace reorder::bench;
using util::Duration;

core::PingBurstResult run_pings(core::Testbed& bed, int burst_size, int bursts) {
  core::PingBurstOptions opts;
  opts.burst_size = burst_size;
  auto ping = core::TestRegistry::global().create_as<core::PingBurstAdapter>(
      bed.probe(), bed.remote_addr(), core::TestSpec{"ping-burst", 0, opts});
  core::TestRunConfig run;
  run.samples = bursts;
  run.sample_spacing = Duration::millis(60);
  (void)bed.run_sync(*ping, run, /*deadline_s=*/600);
  return ping->last_burst_result();
}

}  // namespace

int main() {
  heading("Ping-burst baseline (Bennett et al.) vs the paper's one-way tests",
          "the §II related-work comparison");

  // --- 1. Bennett's headline: a heavily reordering path, bursts of 5 ---
  {
    core::TestbedConfig cfg;
    cfg.seed = 1999;
    cfg.forward.swap_probability = 0.35;  // an exchange-point-like path
    cfg.reverse.swap_probability = 0.35;
    core::Testbed bed{cfg};
    const auto r5 = run_pings(bed, 5, 200);
    const auto r100 = run_pings(bed, 100, 40);
    std::printf("heavily reordering path (35%% swap each way):\n");
    std::printf("  bursts of   5: %5.1f%% of bursts saw reordering   (Bennett: >90%%)\n",
                100 * r5.burst_reorder_fraction());
    std::printf("  bursts of 100: %5.1f%% of bursts saw reordering\n",
                100 * r100.burst_reorder_fraction());
    std::printf("  burst-size sensitivity: same path, same metric, different answer\n\n");
  }

  // --- 2. Direction ambiguity on asymmetric paths ---
  std::printf("direction attribution on asymmetric paths (pair-rate estimates):\n");
  std::printf("%-24s %10s %10s %10s %10s\n", "path (fwd/rev swap)", "ping", "dual fwd",
              "dual rev", "");
  struct Case {
    double fwd;
    double rev;
  };
  for (const Case c : {Case{0.20, 0.0}, Case{0.0, 0.20}, Case{0.10, 0.10}}) {
    core::TestbedConfig cfg;
    cfg.seed = 2100 + static_cast<std::uint64_t>(c.fwd * 100 + c.rev);
    cfg.forward.swap_probability = c.fwd;
    cfg.reverse.swap_probability = c.rev;
    core::Testbed bed{cfg};
    const auto ping = run_pings(bed, 2, 400);  // pairs, like the paper's tests

    auto dual = make_test("dual", bed);
    core::TestRunConfig run;
    run.samples = 400;
    run.sample_spacing = Duration::millis(60);
    const auto d = bed.run_sync(*dual, run, 3000);

    char label[32];
    std::snprintf(label, sizeof label, "%.2f / %.2f", c.fwd, c.rev);
    std::printf("%-24s %10.3f %10.3f %10.3f\n", label, ping.pair_rate(), d.forward.rate(),
                d.reverse.rate());
  }
  std::printf("  -> the ping estimate cannot distinguish the three paths' directions;\n"
              "     the dual-connection test attributes each direction correctly.\n\n");

  // --- 3. ICMP rate limiting starves the measurement ---
  {
    core::TestbedConfig cfg;
    cfg.seed = 2200;
    cfg.remote = core::default_remote_config();
    cfg.remote.ping_rate_limit_per_sec = 50;
    core::Testbed bed{cfg};
    const auto r = run_pings(bed, 5, 100);
    std::printf("rate-limited host (50 replies/s): reply rate %.0f%%, "
                "complete bursts %d/%d\n",
                100 * r.reply_rate(), r.bursts_complete, r.bursts);
    std::printf("(the paper: \"system and network operators alike increasingly filter\n"
                " and rate-limit such traffic\")\n");
  }
  return 0;
}
