// Reproduces the related-work baseline the paper critiques in §II:
// Bennett, Partridge & Shectman's ICMP ping-burst methodology ("Packet
// Reordering is not Pathological Network Behavior", ToN 1999).
//
// Their headline numbers: for bursts of five 56-byte ICMP packets, over
// 90% of bursts to their exchange-point path saw at least one reordering
// event; bursts of 100 packets behaved similarly. The paper's two
// critiques, both demonstrated below:
//
//  1. direction ambiguity — a ping burst cannot tell forward from reverse
//     reordering, so asymmetric paths are mischaracterized, while the
//     paper's one-way tests attribute the direction correctly;
//  2. burst-size sensitivity — "fraction of bursts with >= 1 event" is a
//     function of the burst length, not just of the path;
//  3. (operationally) ICMP rate limiting silently starves the measurement.
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "core/ping_burst_adapter.hpp"
#include "core/result_sink.hpp"
#include "metrics/engine.hpp"
#include "report/table.hpp"

namespace {

using namespace reorder;
using namespace reorder::bench;
using util::Duration;

core::PingBurstResult run_pings(core::Testbed& bed, int burst_size, int bursts) {
  core::PingBurstOptions opts;
  opts.burst_size = burst_size;
  auto ping = core::TestRegistry::global().create_as<core::PingBurstAdapter>(
      bed.probe(), bed.remote_addr(), core::TestSpec{"ping-burst", 0, opts});
  core::TestRunConfig run;
  run.samples = bursts;
  run.sample_spacing = Duration::millis(60);
  (void)bed.run_sync(*ping, run, /*deadline_s=*/600);
  return ping->last_burst_result();
}

}  // namespace

int main() {
  heading("Ping-burst baseline (Bennett et al.) vs the paper's one-way tests",
          "the §II related-work comparison");
  BenchArtifact artifact{"related_work_bennett", "§II (Bennett et al.)"};

  // --- 1. Bennett's headline: a heavily reordering path, bursts of 5 ---
  {
    core::TestbedConfig cfg;
    cfg.seed = 1999;
    cfg.forward.swap_probability = 0.35;  // an exchange-point-like path
    cfg.reverse.swap_probability = 0.35;
    core::Testbed bed{cfg};
    const auto r5 = run_pings(bed, 5, 200);
    const auto r100 = run_pings(bed, 100, 40);
    std::printf("heavily reordering path (35%% swap each way):\n");
    std::printf("  bursts of   5: %5.1f%% of bursts saw reordering   (Bennett: >90%%)\n",
                100 * r5.burst_reorder_fraction());
    std::printf("  bursts of 100: %5.1f%% of bursts saw reordering\n",
                100 * r100.burst_reorder_fraction());
    std::printf("  burst-size sensitivity: same path, same metric, different answer\n\n");

    for (const auto* r : {&r5, &r100}) {
      report::Json row = report::Json::object();
      row.set("type", "row");
      row.set("study", "burst_size_sensitivity");
      row.set("burst_size", r == &r5 ? 5 : 100);
      row.set("burst_reorder_fraction", r->burst_reorder_fraction());
      artifact.write(row);
    }
  }

  // --- 2. Direction ambiguity on asymmetric paths ---
  std::printf("direction attribution on asymmetric paths (pair-rate estimates):\n");
  report::Table table{std::vector<report::Column>{{"path (fwd/rev swap)", report::Align::kLeft},
                                                  {"ping", report::Align::kRight},
                                                  {"dual fwd", report::Align::kRight},
                                                  {"dual rev", report::Align::kRight}}};
  struct Case {
    double fwd;
    double rev;
  };
  // Dual-test estimates stream into the metrics engine (one key per
  // asymmetric path) and are read back as aggregate snapshots.
  metrics::MetricEngine engine;
  metrics::EngineSink engine_sink{engine};
  for (const Case c : {Case{0.20, 0.0}, Case{0.0, 0.20}, Case{0.10, 0.10}}) {
    core::TestbedConfig cfg;
    cfg.seed = 2100 + static_cast<std::uint64_t>(c.fwd * 100 + c.rev);
    cfg.forward.swap_probability = c.fwd;
    cfg.reverse.swap_probability = c.rev;
    core::Testbed bed{cfg};
    const auto ping = run_pings(bed, 2, 400);  // pairs, like the paper's tests

    auto dual = make_test("dual", bed);
    core::TestRunConfig run;
    run.samples = 400;
    run.sample_spacing = Duration::millis(60);
    const auto d = bed.run_sync(*dual, run, 3000);

    char label[32];
    std::snprintf(label, sizeof label, "%.2f / %.2f", c.fwd, c.rev);
    core::publish_result(engine_sink, label, d.test_name, util::TimePoint::epoch(), d);
    const auto dual_fwd = engine.aggregate(label, d.test_name, true);
    const auto dual_rev = engine.aggregate(label, d.test_name, false);
    table.row({label, report::fixed(ping.pair_rate(), 3),
               report::fixed(dual_fwd.rate_or(0.0), 3),
               report::fixed(dual_rev.rate_or(0.0), 3)});

    report::Json row = report::Json::object();
    row.set("type", "row");
    row.set("study", "direction_attribution");
    row.set("true_fwd", c.fwd);
    row.set("true_rev", c.rev);
    row.set("ping_rate", ping.pair_rate());
    row.set("dual_fwd", dual_fwd.rate_or(0.0));
    row.set("dual_rev", dual_rev.rate_or(0.0));
    artifact.write(row);
  }
  table.print();
  engine.emit_jsonl(artifact.jsonl());
  std::printf("  -> the ping estimate cannot distinguish the three paths' directions;\n"
              "     the dual-connection test attributes each direction correctly.\n\n");

  // --- 3. ICMP rate limiting starves the measurement ---
  {
    core::TestbedConfig cfg;
    cfg.seed = 2200;
    cfg.remote = core::default_remote_config();
    cfg.remote.ping_rate_limit_per_sec = 50;
    core::Testbed bed{cfg};
    const auto r = run_pings(bed, 5, 100);
    std::printf("rate-limited host (50 replies/s): reply rate %.0f%%, "
                "complete bursts %d/%d\n",
                100 * r.reply_rate(), r.bursts_complete, r.bursts);
    std::printf("(the paper: \"system and network operators alike increasingly filter\n"
                " and rate-limit such traffic\")\n");

    report::Json row = report::Json::object();
    row.set("type", "summary");
    row.set("study", "icmp_rate_limit");
    row.set("reply_rate", r.reply_rate());
    row.set("bursts_complete", r.bursts_complete);
    row.set("bursts", r.bursts);
    artifact.write(row);
  }
  return 0;
}
