// Library microbenchmarks (engineering, not from the paper): codec and
// checksum throughput, event-loop scheduling, endpoint segment processing,
// the reordering stages, and a full end-to-end measurement sample.
//
// The human table is google-benchmark's console reporter; alongside it a
// JSONL artifact (one record per benchmark run) streams through the
// report layer like every other bench binary's.
#include <benchmark/benchmark.h>

#include <unordered_map>

#include "bench_common.hpp"
#include "core/sharded_survey.hpp"
#include "ingest/parallel_pipeline.hpp"
#include "ingest/pipeline.hpp"
#include "core/test_registry.hpp"
#include "core/testbed.hpp"
#include "metrics/engine.hpp"
#include "metrics/sequence_metrics.hpp"
#include "monitor/engine.hpp"
#include "netsim/event_loop.hpp"
#include "netsim/link.hpp"
#include "netsim/path.hpp"
#include "netsim/striped_link.hpp"
#include "netsim/swap_shaper.hpp"
#include "service/survey_service.hpp"
#include "stats/students_t.hpp"
#include "tcpip/tcp_endpoint.hpp"
#include "trace/analyzer.hpp"
#include "util/buffer_pool.hpp"
#include "util/checksum.hpp"

namespace {

using namespace reorder;

void BM_InternetChecksum(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::internet_checksum(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(40)->Arg(576)->Arg(1500);

void BM_PacketSerialize(benchmark::State& state) {
  tcpip::Packet pkt;
  pkt.ip.src = tcpip::Ipv4Address::from_octets(10, 0, 0, 1);
  pkt.ip.dst = tcpip::Ipv4Address::from_octets(10, 0, 0, 2);
  pkt.tcp.src_port = 40000;
  pkt.tcp.dst_port = 80;
  pkt.tcp.flags = tcpip::kAck | tcpip::kPsh;
  pkt.payload.assign(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pkt.to_wire());
  }
}
BENCHMARK(BM_PacketSerialize)->Arg(0)->Arg(512)->Arg(1460);

void BM_PacketRoundTrip(benchmark::State& state) {
  tcpip::Packet pkt;
  pkt.ip.src = tcpip::Ipv4Address::from_octets(10, 0, 0, 1);
  pkt.ip.dst = tcpip::Ipv4Address::from_octets(10, 0, 0, 2);
  pkt.tcp.mss = 1460;
  pkt.tcp.flags = tcpip::kSyn;
  const auto wire = pkt.to_wire();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tcpip::Packet::from_wire(wire));
  }
}
BENCHMARK(BM_PacketRoundTrip);

// Scheduling throughput, indexed-heap (the production scheduler) vs the
// retained std::map reference — the before/after pair for the PR's >= 3x
// acceptance criterion. The loop lives across iterations: what long surveys
// pay is the steady state, where the heap's storage is already at its
// high-water mark (and the map still allocates two nodes per event). Each
// event carries a capture the size of a typical stage callback (stage
// pointer + in-flight packet state), as every real event does.
struct EventCapture {
  std::uint64_t* sink;
  std::uint64_t state[8];  // 64 bytes of carried packet/timer state
};
void schedule_run(benchmark::State& state, sim::EventLoop::QueuePolicy policy) {
  sim::EventLoop loop{policy};
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < state.range(0); ++i) {
      EventCapture cap{&sink, {static_cast<std::uint64_t>(i)}};
      loop.schedule(util::Duration::micros(i % 97), [cap] { *cap.sink += cap.state[0]; });
    }
    loop.run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
void BM_EventLoopScheduleRun(benchmark::State& state) {
  schedule_run(state, sim::EventLoop::QueuePolicy::kIndexedHeap);
}
BENCHMARK(BM_EventLoopScheduleRun)->Arg(1000)->Arg(10000);
void BM_EventLoopScheduleRunMapRef(benchmark::State& state) {
  schedule_run(state, sim::EventLoop::QueuePolicy::kReferenceMap);
}
BENCHMARK(BM_EventLoopScheduleRunMapRef)->Arg(1000)->Arg(10000);

// Steady-state cancel-heavy workload: the protocol-timer pattern (RTO /
// delayed-ACK / watchdog timers are armed constantly and almost always
// cancelled before firing). Half of all scheduled events are cancelled.
void cancel_heavy(benchmark::State& state, sim::EventLoop::QueuePolicy policy) {
  sim::EventLoop loop{policy};
  std::vector<std::uint64_t> tokens(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      tokens[i] = loop.schedule(util::Duration::micros(static_cast<std::int64_t>(i % 97)), [] {});
    }
    for (std::size_t i = 0; i < tokens.size(); i += 2) loop.cancel(tokens[i]);
    loop.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
void BM_EventLoopCancelHeavy(benchmark::State& state) {
  cancel_heavy(state, sim::EventLoop::QueuePolicy::kIndexedHeap);
}
BENCHMARK(BM_EventLoopCancelHeavy)->Arg(1000);
void BM_EventLoopCancelHeavyMapRef(benchmark::State& state) {
  cancel_heavy(state, sim::EventLoop::QueuePolicy::kReferenceMap);
}
BENCHMARK(BM_EventLoopCancelHeavyMapRef)->Arg(1000);

// One packet through a 4-stage path (link > jitter > striped link > link):
// the exact hot path a measurement sample's packets traverse, including
// four packet-carrying callbacks through the scheduler and a pooled
// payload recycled at the terminal sink.
void BM_LinkChainTransit(benchmark::State& state) {
  sim::EventLoop loop;
  sim::Path path;
  sim::LinkParams link_params;
  path.emplace<sim::LinkStage>(loop, link_params);
  path.emplace<sim::JitterStage>(loop, util::Duration::micros(0), util::Duration::micros(50),
                                 util::Rng{7});
  path.emplace<sim::StripedLink>(loop, sim::StripedLinkConfig{}, util::Rng{11});
  path.emplace<sim::LinkStage>(loop, link_params);
  std::uint64_t arrived = 0;
  path.terminate([&arrived](tcpip::Packet pkt) {
    ++arrived;
    tcpip::recycle(std::move(pkt));
  });
  const auto entry = path.entry();
  for (auto _ : state) {
    tcpip::Packet pkt;
    pkt.ip.src = tcpip::Ipv4Address::from_octets(10, 0, 0, 1);
    pkt.ip.dst = tcpip::Ipv4Address::from_octets(10, 0, 0, 2);
    pkt.tcp.src_port = 40000;
    pkt.tcp.dst_port = 80;
    pkt.payload = util::BufferPool::global().acquire(512);
    pkt.payload.assign(512, 0x2a);
    entry(std::move(pkt));
    loop.run();
  }
  state.SetItemsProcessed(state.iterations());
  benchmark::DoNotOptimize(arrived);
}
BENCHMARK(BM_LinkChainTransit);

void BM_EndpointInOrderSegments(benchmark::State& state) {
  sim::EventLoop loop;
  tcpip::TcpBehavior behavior;
  behavior.delayed_ack = tcpip::DelayedAckPolicy::kNone;
  const tcpip::ConnKey key{80, tcpip::Ipv4Address::from_octets(10, 0, 0, 1), 40000};
  tcpip::TcpEndpoint ep{loop, behavior, key, 1000,
                        [](tcpip::TcpHeader, std::vector<std::uint8_t>) {}};
  tcpip::Packet syn;
  syn.ip.src = key.remote_addr;
  syn.tcp.src_port = 40000;
  syn.tcp.dst_port = 80;
  syn.tcp.flags = tcpip::kSyn;
  syn.tcp.seq = 5000;
  ep.on_segment(syn);
  tcpip::Packet ack = syn;
  ack.tcp.flags = tcpip::kAck;
  ack.tcp.seq = 5001;
  ack.tcp.ack = 1001;
  ep.on_segment(ack);

  tcpip::Packet data = ack;
  data.tcp.flags = tcpip::kAck | tcpip::kPsh;
  data.payload.assign(512, 0x11);
  std::uint32_t seq = 5001;
  for (auto _ : state) {
    data.tcp.seq = seq;
    seq += 512;
    ep.on_segment(data);
  }
  state.SetBytesProcessed(state.iterations() * 512);
}
BENCHMARK(BM_EndpointInOrderSegments);

void BM_SwapShaperStream(benchmark::State& state) {
  sim::EventLoop loop;
  sim::SwapShaper shaper{loop, sim::SwapShaperConfig{0.1, util::Duration::millis(5)},
                         util::Rng{1}};
  std::uint64_t sink_count = 0;
  shaper.connect([&](tcpip::Packet) { ++sink_count; });
  tcpip::Packet pkt;
  for (auto _ : state) {
    shaper.accept(pkt);
    if ((state.iterations() & 0xff) == 0) loop.run();
  }
  loop.run();
  benchmark::DoNotOptimize(sink_count);
}
BENCHMARK(BM_SwapShaperStream);

void BM_CountInversions(benchmark::State& state) {
  std::vector<std::uint32_t> arrival(static_cast<std::size_t>(state.range(0)));
  util::Rng rng{3};
  for (std::size_t i = 0; i < arrival.size(); ++i) arrival[i] = static_cast<std::uint32_t>(i);
  for (std::size_t i = arrival.size(); i > 1; --i) {
    std::swap(arrival[i - 1], arrival[rng.below(i)]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::count_inversions(arrival));
  }
}
BENCHMARK(BM_CountInversions)->Arg(16)->Arg(100);

void BM_StudentTCritical(benchmark::State& state) {
  double df = 2.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::student_t_critical(0.999, df));
    df = df < 200.0 ? df + 1.0 : 2.0;
  }
}
BENCHMARK(BM_StudentTCritical);

// Metrics-engine hot path: folding one completed measurement (and its
// samples) into a (target, test) suite — what every measurement a
// million-path survey completes pays.
void BM_MetricEngineObserve(benchmark::State& state) {
  util::Rng rng{17};
  core::TestRunResult result;
  result.test_name = "bench";
  for (int i = 0; i < state.range(0); ++i) {
    core::SampleResult s;
    s.forward = rng.bernoulli(0.2) ? core::Ordering::kReordered : core::Ordering::kInOrder;
    s.reverse = core::Ordering::kInOrder;
    s.started = util::TimePoint::from_ns(i * 1000);
    s.completed = util::TimePoint::from_ns(i * 1000 + 800);
    s.gap = util::Duration::micros(i % 8);
    result.samples.push_back(s);
  }
  result.aggregate();

  metrics::MetricEngine engine;
  std::size_t index = 0;
  for (auto _ : state) {
    engine.observe_measurement(core::MeasurementEvent{"host", "test", index++,
                                                      util::TimePoint::epoch(), result});
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MetricEngineObserve)->Arg(15)->Arg(100);

// Cross-shard fold: merging two populated per-shard engines (3 targets x
// 2 tests, 64 measurements each) into a fresh survey-wide engine.
void BM_MetricEngineMerge(benchmark::State& state) {
  util::Rng rng{23};
  const auto build_shard = [&rng] {
    metrics::MetricEngine shard;
    for (int t = 0; t < 3; ++t) {
      const std::string target = "host-" + std::to_string(t);
      for (const char* test : {"syn", "single-connection"}) {
        for (std::size_t m = 0; m < 64; ++m) {
          core::TestRunResult result;
          result.test_name = test;
          for (int i = 0; i < 15; ++i) {
            core::SampleResult s;
            s.forward =
                rng.bernoulli(0.2) ? core::Ordering::kReordered : core::Ordering::kInOrder;
            s.completed = util::TimePoint::from_ns(800);
            s.gap = util::Duration::micros(i % 8);
            result.samples.push_back(s);
          }
          result.aggregate();
          shard.observe_measurement(
              core::MeasurementEvent{target, test, m, util::TimePoint::epoch(), result});
        }
      }
    }
    return shard;
  };
  const metrics::MetricEngine shard_a = build_shard();
  const metrics::MetricEngine shard_b = build_shard();
  for (auto _ : state) {
    metrics::MetricEngine merged;
    merged.merge(shard_a);
    merged.merge(shard_b);
    benchmark::DoNotOptimize(merged.key_count());
  }
  state.SetItemsProcessed(state.iterations() * 2 * 6);  // suites folded per iteration
}
BENCHMARK(BM_MetricEngineMerge);

void BM_FullMeasurementSample(benchmark::State& state) {
  // One complete single-connection measurement (connect + N samples +
  // close) per iteration batch; reports time per sample.
  for (auto _ : state) {
    core::TestbedConfig cfg;
    cfg.seed = 42;
    cfg.forward.swap_probability = 0.1;
    core::Testbed bed{cfg};
    auto test = core::make_registered_test(bed.probe(), bed.remote_addr(),
                                           core::TestSpec{"single-connection"});
    core::TestRunConfig run;
    run.samples = 20;
    benchmark::DoNotOptimize(bed.run_sync(*test, run));
  }
  state.SetItemsProcessed(state.iterations() * 20);
}
BENCHMARK(BM_FullMeasurementSample)->Unit(benchmark::kMillisecond);

// Parallel fleet scaling: a fixed 8-target survey partitioned into 4
// shards, driven by {1, 2, 4} pool threads. Shard count is pinned so
// every row simulates the IDENTICAL per-shard workload (and, per the
// bit-exactness guarantee, produces identical results) — the ratio
// between rows is pure thread-pool speedup, the number the CI scaling
// gate tracks.
void BM_ShardedSurvey(benchmark::State& state) {
  core::ShardedSurveyConfig cfg;
  cfg.fleet.seed = 11;
  for (int i = 0; i < 8; ++i) {
    core::SurveyTargetConfig target;
    target.name = "host-" + std::to_string(i);
    target.forward.swap_probability = (i % 4) * 0.05;
    target.remote.behavior.immediate_ack_on_hole_fill = true;
    target.tests = {core::TestSpec{"single-connection"}, core::TestSpec{"syn"}};
    cfg.fleet.targets.push_back(std::move(target));
  }
  cfg.shards = 4;
  cfg.threads = static_cast<std::size_t>(state.range(0));
  core::ShardedSurveyEngine engine{cfg};
  core::TestRunConfig run;
  run.samples = 10;
  std::size_t measurements = 0;
  for (auto _ : state) {
    measurements = engine.run(run, /*rounds=*/1, util::Duration::millis(200)).size();
    benchmark::DoNotOptimize(measurements);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(measurements));
}
// UseRealTime: the work happens on pool workers, so the main thread's
// CPU clock would show nothing — wall time is the quantity that scales.
BENCHMARK(BM_ShardedSurvey)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The resident service's admit-to-drain cycle over the same 8-target
// fleet BM_ShardedSurvey runs — work-stealing pool, per-target worlds,
// checkpoint off. The batch twin above is the reference: the service's
// rows should scale with workers the same way (its per-target grain is
// finer than the batch runtime's 4-shard grain, so stealing has more to
// balance).
void BM_ServiceAdmitDrain(benchmark::State& state) {
  std::vector<core::SurveyTargetConfig> fleet;
  for (int i = 0; i < 8; ++i) {
    core::SurveyTargetConfig target;
    target.name = "host-" + std::to_string(i);
    target.forward.swap_probability = (i % 4) * 0.05;
    target.remote.behavior.immediate_ack_on_hole_fill = true;
    target.tests = {core::TestSpec{"single-connection"}, core::TestSpec{"syn"}};
    fleet.push_back(std::move(target));
  }
  std::size_t measurements = 0;
  for (auto _ : state) {
    service::SurveyServiceConfig cfg;
    cfg.seed = 11;
    cfg.workers = static_cast<std::size_t>(state.range(0));
    cfg.run.samples = 10;
    cfg.rounds = 1;
    cfg.between = util::Duration::millis(200);
    service::SurveyService service{cfg};
    service.admit(fleet);
    service.drain();
    measurements = service.snapshot().measurements;
    benchmark::DoNotOptimize(measurements);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(measurements));
}
BENCHMARK(BM_ServiceAdmitDrain)
    ->ArgName("workers")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The live view's cost: snapshot() folds every populated accumulator
// slot through MetricEngine::merge under per-slot locks. Priced on a
// quiescent populated service so the number is the pure fold — mid-run
// it additionally contends with completing workers, never blocks them.
void BM_LiveSnapshot(benchmark::State& state) {
  service::SurveyServiceConfig cfg;
  cfg.seed = 11;
  cfg.workers = 4;
  cfg.run.samples = 10;
  cfg.rounds = 1;
  cfg.between = util::Duration::millis(200);
  service::SurveyService service{cfg};
  std::vector<core::SurveyTargetConfig> fleet;
  for (int i = 0; i < 8; ++i) {
    core::SurveyTargetConfig target;
    target.name = "host-" + std::to_string(i);
    target.forward.swap_probability = (i % 4) * 0.05;
    target.remote.behavior.immediate_ack_on_hole_fill = true;
    target.tests = {core::TestSpec{"single-connection"}, core::TestSpec{"syn"}};
    fleet.push_back(std::move(target));
  }
  service.admit(std::move(fleet));
  service.drain();
  for (auto _ : state) {
    const service::SurveyService::Snapshot snap = service.snapshot();
    benchmark::DoNotOptimize(snap.measurements);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LiveSnapshot);

// ----------------------------------------------------------------- monitor

// The always-on hot path: MonitorEngine::ingest over `flows` concurrent
// round-robin flows against a 1024-slot table with the default 256 B
// detector suite. 64 flows is the all-hits resident case; 4096 flows
// overflows the table four-fold, so every arrival pays the LRU eviction
// and fold path too. Epochs close every 512 rounds the way real flows do.
void BM_MonitorIngest(benchmark::State& state) {
  const std::size_t flows = static_cast<std::size_t>(state.range(0));
  monitor::MonitorConfig cfg;
  cfg.table.slots = 1024;
  monitor::MonitorEngine engine{cfg};
  std::vector<std::uint32_t> send(flows, 0);
  std::size_t f = 0;
  std::uint32_t round = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.ingest(f + 1, send[f]++));
    if (++f == flows) {
      f = 0;
      if (++round == 512) {
        round = 0;
        engine.flush();
        std::fill(send.begin(), send.end(), 0);
      }
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MonitorIngest)->ArgName("flows")->Arg(64)->Arg(4096);

// The exact-metrics twin of BM_MonitorIngest — identical traffic into
// per-flow unbounded SequenceExtentMetric + NReorderingMetric (the state
// MetricEngine keeps per key). The monitor's per-arrival budget must
// stay >= 2x cheaper than this; CI gates on the ratio.
void BM_ExactSequenceIngest(benchmark::State& state) {
  const std::size_t flows = static_cast<std::size_t>(state.range(0));
  const auto exact_suite = [] {
    metrics::MetricSuite suite;
    suite.add(std::make_unique<metrics::SequenceExtentMetric>());
    suite.add(std::make_unique<metrics::NReorderingMetric>());
    return suite;
  };
  std::unordered_map<std::uint64_t, metrics::MetricSuite> map;
  map.reserve(flows);
  for (std::size_t i = 0; i < flows; ++i) map.emplace(i + 1, exact_suite());
  std::vector<std::uint32_t> send(flows, 0);
  std::size_t f = 0;
  std::uint32_t round = 0;
  for (auto _ : state) {
    map.find(f + 1)->second.observe_arrival(send[f]++);
    if (++f == flows) {
      f = 0;
      if (++round == 512) {
        round = 0;
        for (auto& [key, suite] : map) suite.end_sequence();
        std::fill(send.begin(), send.end(), 0);
      }
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExactSequenceIngest)->ArgName("flows")->Arg(64)->Arg(4096);

// The table alone: set-associative lookup + LRU touch. 512 distinct keys
// stay resident in the 1024 slots (pure hit path); 65536 keys thrash
// (miss + eviction path).
void BM_FlowTableLookup(benchmark::State& state) {
  monitor::FlowTableConfig cfg;
  cfg.slots = 1024;
  monitor::FlowTable table{cfg};
  util::Rng rng{5};
  std::vector<std::uint64_t> keys(8192);
  for (auto& k : keys) k = rng.below(static_cast<std::uint64_t>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(keys[i]));
    if (++i == keys.size()) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlowTableLookup)->ArgName("keys")->Arg(512)->Arg(65536);

// ------------------------------------------------------------------ ingest

namespace {

// The ingest benches' traffic: `flows` concurrent flows delivered the way
// interrupt coalescing does — per-flow in-order send indices, interleaved
// burst-by-burst in runs of `run` arrivals. This is the stream shape the
// batched path amortizes over (one map/table lookup and one virtual
// fan-in per run instead of per arrival); the scalar comparator
// BM_ExactSequenceIngest feeds the same suite one arrival at a time.
std::vector<ingest::ArrivalBatch> coalesced_batches(std::size_t flows, std::uint32_t packets,
                                                    std::size_t run, std::size_t batch_capacity) {
  std::vector<ingest::ArrivalBatch> out;
  ingest::ArrivalBatchBuilder builder{batch_capacity};
  std::vector<std::uint32_t> next(flows, 0);
  bool more = true;
  while (more) {
    more = false;
    for (std::size_t f = 0; f < flows; ++f) {
      for (std::size_t i = 0; i < run && next[f] < packets; ++i) {
        if (builder.push(f + 1, next[f]++, 0)) out.push_back(builder.take());
      }
      more = more || next[f] < packets;
    }
  }
  if (builder.size() > 0) out.push_back(builder.take());
  return out;
}

}  // namespace

// The batched observe path of the sequence-metric suite: SequenceEngine
// drains pre-rendered SoA batches of the coalesced stream (4096 flows,
// runs of 16) through observe_arrivals() spans. The CI perf gate asserts
// this sustains >= 3x the scalar per-arrival items/s of
// BM_ExactSequenceIngest/flows:4096 — the amortization the ingest
// subsystem exists to buy.
void BM_BatchedObserve(benchmark::State& state) {
  const std::size_t flows = static_cast<std::size_t>(state.range(0));
  const std::vector<ingest::ArrivalBatch> batches =
      coalesced_batches(flows, /*packets=*/512, /*run=*/16, /*batch_capacity=*/1024);
  ingest::SequenceEngine engine;
  std::size_t b = 0;
  std::int64_t arrivals = 0;
  for (auto _ : state) {
    engine.ingest_batch(batches[b]);
    arrivals += static_cast<std::int64_t>(batches[b].size());
    if (++b == batches.size()) {
      b = 0;
      engine.flush();  // close every flow's sequence, like the scalar twin
    }
  }
  state.SetItemsProcessed(arrivals);
}
BENCHMARK(BM_BatchedObserve)->ArgName("flows")->Arg(64)->Arg(4096);

// The whole subsystem end to end: producer thread renders the coalesced
// stream into batches, SPSC ring, consumer thread drains the batched
// sequence-metric path. UseRealTime: the analytics run on the consumer
// thread, so wall time is the arrivals/s that matters (the README's
// line-rate number).
void BM_IngestPipeline(benchmark::State& state) {
  const std::size_t flows = static_cast<std::size_t>(state.range(0));
  std::vector<ingest::Arrival> stream;
  for (const ingest::ArrivalBatch& batch :
       coalesced_batches(flows, /*packets=*/512, /*run=*/16, /*batch_capacity=*/1024)) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      stream.push_back(
          ingest::Arrival{batch.flows()[i], batch.send_indices()[i], batch.timestamps_ns()[i]});
    }
  }
  ingest::SequenceEngine engine;
  ingest::PipelineConfig cfg;
  cfg.batch_capacity = 1024;
  cfg.ring_batches = 64;
  std::int64_t arrivals = 0;
  for (auto _ : state) {
    ingest::IngestPipeline pipeline{cfg, &engine, nullptr};
    arrivals += static_cast<std::int64_t>(pipeline.run(stream).arrivals_consumed);
    engine.flush();
  }
  state.SetItemsProcessed(arrivals);
}
BENCHMARK(BM_IngestPipeline)->ArgName("flows")->Arg(4096)->UseRealTime();

// The multi-queue pipeline at shard counts {1,2,4}: the dispatcher splits
// the same coalesced stream by flow hash across N consumer shards, each
// draining a private SequenceEngine. shards:1 is the honest baseline (the
// same 1 producer + 1 consumer shape as BM_IngestPipeline, plus the
// dispatcher's split); the CI perf gate asserts shards:4 sustains >= 2.5x
// its real_time on the 4-vCPU runner — the scaling the sharding buys.
// UseRealTime for the same reason as above: the analytics run on the
// consumer threads.
void BM_ParallelIngest(benchmark::State& state) {
  const std::size_t shards = static_cast<std::size_t>(state.range(0));
  std::vector<ingest::Arrival> stream;
  for (const ingest::ArrivalBatch& batch :
       coalesced_batches(/*flows=*/4096, /*packets=*/512, /*run=*/16, /*batch_capacity=*/1024)) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      stream.push_back(
          ingest::Arrival{batch.flows()[i], batch.send_indices()[i], batch.timestamps_ns()[i]});
    }
  }
  ingest::ParallelPipelineConfig cfg;
  cfg.shards = shards;
  cfg.batch_capacity = 1024;
  cfg.ring_batches = 64;
  std::int64_t arrivals = 0;
  for (auto _ : state) {
    ingest::ParallelIngestPipeline pipeline{cfg};
    arrivals += static_cast<std::int64_t>(pipeline.run(stream).arrivals_consumed);
    pipeline.flush();
  }
  state.SetItemsProcessed(arrivals);
}
BENCHMARK(BM_ParallelIngest)->ArgName("shards")->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// The regular console table, plus one {"type":"run",...} JSONL record
// per benchmark run into the shared BenchArtifact format.
class JsonlBenchReporter final : public benchmark::ConsoleReporter {
 public:
  explicit JsonlBenchReporter(bench::BenchArtifact& artifact) : artifact_{artifact} {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      report::Json j = report::Json::object();
      j.set("type", "run");
      j.set("name", run.benchmark_name());
      j.set("iterations", static_cast<std::int64_t>(run.iterations));
      j.set("real_time", run.GetAdjustedRealTime());
      j.set("cpu_time", run.GetAdjustedCPUTime());
      j.set("time_unit", benchmark::GetTimeUnitString(run.time_unit));
      for (const auto& [name, counter] : run.counters) {
        j.set(name, static_cast<double>(counter));
      }
      artifact_.write(j);
    }
  }

 private:
  bench::BenchArtifact& artifact_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  bench::BenchArtifact artifact{"micro_bench", "library microbenchmarks"};
  JsonlBenchReporter reporter{artifact};
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
