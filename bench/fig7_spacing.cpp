// Reproduces Figure 7: reordering probability along one path as a function
// of the spacing between two minimum-sized packets, measured with the
// dual-connection test.
//
// The paper's mechanism (§IV-C): routers stripe packets across parallel
// L2 links; queues drain at a constant rate, so a trailing packet can only
// overtake if the lanes' backlog difference exceeds the inter-packet gap.
// Their path showed >10% reordering back-to-back, <2% after 50 us of
// added spacing, and ~0 past 250 us. The StripedLink stage reproduces the
// mechanism; the sweep below reproduces the measurement at the paper's
// resolution: 1000 samples per point, 1 us steps below 200 us, 20 us
// steps beyond (paper caption). The printed table is decimated to every
// 4th fine point to keep it readable; every point enters the profile and
// the JSONL artifact.
#include <cstdio>

#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "core/scenario.hpp"
#include "report/builders.hpp"

namespace {

using namespace reorder;
using namespace reorder::bench;
using util::Duration;

constexpr int kSamplesPerPoint = 1000;  // paper caption: 1000 samples/point
constexpr int kFineStepUs = 1;          // paper: 1 us increments below 200 us
constexpr int kCoarseStepUs = 20;       // paper: 20 us increments thereafter
constexpr int kFineLimitUs = 200;
constexpr int kMaxGapUs = 400;
constexpr int kPrintEveryUs = 4;

}  // namespace

int main() {
  heading("Reordering probability vs inter-packet spacing", "Figure 7");
  BenchArtifact artifact{"fig7_spacing", "Figure 7 / §IV-C"};

  // The canonical striped-links scenario carries the topology (the §IV-C
  // two-lane striping between fast enclosing links); this bench only
  // overrides the sweep resolution to the paper's caption.
  core::ScenarioSpec spec = core::scenarios::striped_links(/*seed=*/707);
  spec.run.samples = kSamplesPerPoint;
  spec.between_measurements = Duration::millis(1);
  spec.stop_on_inadmissible = true;  // don't spend the grid on a dead setup
  spec.gap_sweep.clear();
  for (int gap_us = 0; gap_us <= kMaxGapUs;
       gap_us += (gap_us < kFineLimitUs ? kFineStepUs : kCoarseStepUs)) {
    spec.gap_sweep.push_back(Duration::micros(gap_us));
  }
  // The scenario runner streams every cell into its metrics engine; the
  // time-domain profile is a snapshot read of the per-gap accumulators.
  const core::ScenarioResult sweep = core::run_scenario(spec);
  for (const auto& m : sweep.measurements) {
    if (!m.result.admissible) {
      std::printf("inadmissible: %s\n", m.result.note.c_str());
      return 1;
    }
  }

  report::TimeDomainReport report{sweep.time_domain("dual-connection"), kPrintEveryUs};
  report.table().print();
  report.emit_jsonl(artifact.jsonl());
  sweep.metrics->emit_jsonl(artifact.jsonl());

  const auto& profile = report.profile();
  const double r0 = profile.interpolate_rate(Duration::micros(0)).value_or(0.0);
  const double r50 = profile.interpolate_rate(Duration::micros(50)).value_or(0.0);
  const double r250 = profile.interpolate_rate(Duration::micros(250)).value_or(0.0);
  std::printf("\nback-to-back rate: %.3f   (paper: >10%%)\n", r0);
  std::printf("rate at 50us:      %.3f   (paper: <2%%)\n", r50);
  std::printf("rate at 250us:     %.3f   (paper: ~0)\n", r250);
  std::printf("\nprediction use (§IV-C): a 1500-byte data packet at 100 Mbps adds ~120 us of\n"
              "leading-edge spacing; interpolated reordering rate there: %.4f — full-sized\n"
              "transfers see far less reordering than minimum-sized probes.\n",
              profile.interpolate_rate(Duration::micros(120)).value_or(0.0));
  return 0;
}
