// Reproduces the other §II related-work baseline: Paxson's passive
// methodology (End-to-End Internet Packet Dynamics). 100 KB TCP transfers
// between instrumented endpoints, traces captured at both ends, TCP
// sequence numbers analyzed for out-of-order delivery.
//
// Paxson's reported numbers across his two measurement periods: 12% and
// 36% of sessions had at least one reordering event; 2.0% and 0.3% of
// data packets arrived out of order (0.6% / 0.1% for acks). The paper's
// critiques: the method needs code at both endpoints, and TCP's own
// dynamics (delayed acks, congestion control, variable packet sizes)
// modulate the packet spacing, so the estimate is biased by the transport
// — demonstrated here by comparing passive estimates against the active
// dual-connection test on the same time-dependent path.
#include <cstdio>

#include "bench_common.hpp"
#include "metrics/sequence_metrics.hpp"
#include "report/table.hpp"
#include "trace/analyzer.hpp"
#include "util/random.hpp"

namespace {

using namespace reorder;
using namespace reorder::bench;
using util::Duration;

constexpr int kSessions = 30;
constexpr std::size_t kTransferBytes = 100 * 1024;  // Paxson's 100 KB

}  // namespace

int main() {
  heading("Passive trace analysis baseline (Paxson)", "the §II related-work comparison");
  BenchArtifact artifact{"related_work_paxson", "§II (Paxson)"};

  util::Rng rng{1997};
  int sessions_with_reordering = 0;
  // Survey-wide totals accumulate by MERGING each session's streaming
  // sequence metrics — the per-shard pattern: one accumulator per
  // session, folded into fleet-wide ones, exactly.
  metrics::SequenceExtentMetric total_extent;
  metrics::NReorderingMetric total_n;
  metrics::BufferDensityMetric total_rbd;

  report::Table table =
      report::Table::with_headers({"session", "true p", "segments", "out-of-order"});
  for (int s = 0; s < kSessions; ++s) {
    // A quarter of the paths reorder (Paxson saw broad variation across
    // his 35-site mesh).
    const double p = rng.bernoulli(0.25) ? rng.uniform(0.005, 0.05) : 0.0;

    core::TestbedConfig cfg;
    cfg.seed = 7100 + static_cast<std::uint64_t>(s);
    cfg.reverse.swap_probability = p;  // data flows remote -> probe
    cfg.remote = core::default_remote_config(kTransferBytes);
    core::Testbed bed{cfg};

    // A 100KB transfer with ordinary (unclamped) windows, traced at the
    // receiver — the passive observer's view.
    core::DataTransferOptions opts;
    opts.mss = 1460;
    opts.window = 65535;
    auto transfer = core::make_registered_test(bed.probe(), bed.remote_addr(),
                                               core::TestSpec{"data-transfer", 0, opts});
    const auto result = bed.run_sync(*transfer, core::TestRunConfig{}, 3000);
    if (!result.admissible) continue;

    // The passive observer's view: the arrival sequence of data segments
    // at the receiver tap, streamed through this session's sequence
    // metrics (RFC 4737 reordering, RFC 5236 n-reordering, resequencing
    // buffer occupancy).
    const std::uint16_t client_port = bed.probe_ingress_trace().records().empty()
                                          ? 0
                                          : bed.probe_ingress_trace().records()[0].packet.tcp.dst_port;
    const auto arrival =
        trace::data_arrival_sequence(bed.probe_ingress_trace(), core::kHttpPort, client_port);
    metrics::SequenceExtentMetric session_extent;
    metrics::NReorderingMetric session_n;
    metrics::BufferDensityMetric session_rbd;
    metrics::observe_sequence(session_extent, arrival);
    metrics::observe_sequence(session_n, arrival);
    metrics::observe_sequence(session_rbd, arrival);

    if (session_extent.reordered() > 0) ++sessions_with_reordering;
    table.row({report::integer(s), report::fixed(p, 3),
               report::integer(static_cast<std::int64_t>(session_extent.packets())),
               report::integer(static_cast<std::int64_t>(session_extent.reordered()))});

    report::Json row = report::Json::object();
    row.set("type", "row");
    row.set("session", s);
    row.set("true_p", p);
    row.set("data_segments", session_extent.packets());
    row.set("out_of_order", session_extent.reordered());
    row.set("max_extent", static_cast<std::uint64_t>(session_extent.max_extent()));
    row.set("max_buffer_occupancy", session_rbd.max_occupancy());
    artifact.write(row);

    total_extent.merge(session_extent);
    total_n.merge(session_n);
    total_rbd.merge(session_rbd);
  }
  table.print();

  const std::uint64_t data_segments = total_extent.packets();
  const std::uint64_t data_out_of_order = total_extent.reordered();

  std::printf("\nsessions with >= 1 reordering event: %d / %d (%.0f%%)   "
              "(Paxson: 12%% and 36%%)\n",
              sessions_with_reordering, kSessions,
              100.0 * sessions_with_reordering / kSessions);
  std::printf("data packets out of order:           %.2f%%            "
              "(Paxson: 2.0%% and 0.3%%)\n",
              100.0 * static_cast<double>(data_out_of_order) /
                  static_cast<double>(data_segments));

  report::Json summary = report::Json::object();
  summary.set("type", "summary");
  summary.set("sessions", kSessions);
  summary.set("sessions_with_reordering", sessions_with_reordering);
  summary.set("data_segments", data_segments);
  summary.set("data_out_of_order", data_out_of_order);
  // The merged (survey-wide) sequence metrics, verbatim.
  summary.set("sequence_extent", total_extent.to_json());
  summary.set("n_reordering", total_n.to_json());
  summary.set("buffer_density", total_rbd.to_json());

  // The transport-bias critique: on a time-dependent (striped) path the
  // passive 1460-byte transfer sees systematically less reordering than
  // minimum-sized active probes measure.
  {
    core::TestbedConfig cfg;
    cfg.seed = 7300;
    auto striped = sim::StripedLinkConfig{};
    striped.contention_probability = 0.35;
    cfg.reverse.striped = striped;
    cfg.remote = core::default_remote_config(kTransferBytes);
    core::Testbed bed{cfg};

    core::DataTransferOptions opts;
    opts.mss = 1460;
    opts.window = 65535;
    auto transfer = core::make_registered_test(bed.probe(), bed.remote_addr(),
                                               core::TestSpec{"data-transfer", 0, opts});
    const auto passive = bed.run_sync(*transfer, core::TestRunConfig{}, 3000);

    auto dual = make_test("dual", bed);
    core::TestRunConfig run;
    run.samples = 300;
    const auto active = bed.run_sync(*dual, run, 3000);

    std::printf("\ntransport bias on a time-dependent path:\n");
    std::printf("  passive 1460-byte transfer estimate: %.3f\n", passive.reverse.rate_or(0.0));
    std::printf("  active minimum-sized probe estimate: %.3f (reverse)\n",
                active.reverse.rate_or(0.0));
    std::printf("(the paper §II: passive transfers measure \"the reordering seen by a\n"
                " one-way 100KB TCP data transfer in situ\", not the path's process)\n");

    summary.set("passive_estimate_striped", passive.reverse.rate_or(0.0));
    summary.set("active_estimate_striped", active.reverse.rate_or(0.0));
  }
  artifact.write(summary);
  return 0;
}
