// Ablations over the design choices DESIGN.md calls out. Three studies:
//
//  A. Swap-shaper hold timeout vs sample pacing — quantifies the measured-
//     rate bias when probe "politeness" traffic (handshake completions,
//     FIN exchanges) lands inside the shaper's hold window, and shows the
//     unbiased regime (pacing > hold).
//
//  B. Single-connection send-order variant x remote delayed-ACK policy —
//     the paper's §III-B trade-off as a matrix: which combinations yield
//     usable samples, which collapse into ambiguity.
//
//  C. Striped-link occupancy model (exponential vs uniform backlog) and
//     lane count — how the Fig. 7 decay shape depends on the cross-traffic
//     model (exponential: memoryless tail; uniform: hard cutoff).
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "core/result_sink.hpp"
#include "metrics/engine.hpp"
#include "report/table.hpp"

namespace {

using namespace reorder;
using namespace reorder::bench;
using util::Duration;

void study_a(BenchArtifact& artifact) {
  std::printf("A. swap-shaper hold vs sample pacing (SYN test, true p = 0.15)\n");
  report::Table table = report::Table::with_headers({"hold (ms)", "pacing (ms)", "measured",
                                                     "bias"});
  // Every cell's run streams into the engine (one key per cell); the
  // measured rate is read back from the aggregate snapshot.
  metrics::MetricEngine engine;
  metrics::EngineSink sink{engine};
  for (const int hold_ms : {10, 50}) {
    for (const int pacing_ms : {5, 20, 60, 120}) {
      core::TestbedConfig cfg;
      cfg.seed = 3100 + static_cast<std::uint64_t>(hold_ms * 10 + pacing_ms);
      cfg.forward.swap_probability = 0.15;
      cfg.forward.swap_max_hold = Duration::millis(hold_ms);
      core::Testbed bed{cfg};
      auto test = make_test("syn", bed);
      core::TestRunConfig run;
      run.samples = 2000;  // +-1.6% at 2 sigma; the bias signal is ~2.3%
      run.sample_spacing = Duration::millis(pacing_ms);
      const auto result = bed.run_sync(*test, run, 3000);
      const std::string cell =
          "hold" + std::to_string(hold_ms) + "/pace" + std::to_string(pacing_ms);
      core::publish_result(sink, cell, result.test_name, util::TimePoint::epoch(), result);
      const double measured = engine.aggregate(cell, result.test_name, true).rate_or(0.0);
      table.row({report::integer(hold_ms), report::integer(pacing_ms),
                 report::fixed(measured, 3), report::signed_fixed(measured - 0.15, 3)});

      report::Json row = report::Json::object();
      row.set("type", "row");
      row.set("study", "hold_vs_pacing");
      row.set("hold_ms", hold_ms);
      row.set("pacing_ms", pacing_ms);
      row.set("measured", measured);
      row.set("bias", measured - 0.15);
      artifact.write(row);
    }
  }
  table.print();
  std::printf("  -> pacing inside the hold window biases the estimate low (close-traffic\n"
              "     packets occupy the shaper's hold slot when the next sample's probes\n"
              "     arrive); pacing beyond it is unbiased to within sampling noise.\n\n");
}

void study_b(BenchArtifact& artifact) {
  std::printf("B. single-connection variant x remote hole-fill ACK policy\n");
  std::printf("   (clean path, 60 samples: usable / ambiguous / reordered)\n");
  report::Table table{std::vector<report::Column>{{"variant", report::Align::kLeft},
                                                  {"hole-fill ACK", report::Align::kLeft},
                                                  {"usable", report::Align::kRight},
                                                  {"ambiguous", report::Align::kRight},
                                                  {"reordered", report::Align::kRight}}};
  for (const bool reversed : {false, true}) {
    for (const bool immediate : {false, true}) {
      core::TestbedConfig cfg;
      cfg.seed = 3200 + static_cast<std::uint64_t>(reversed * 2 + immediate);
      cfg.remote = core::default_remote_config();
      cfg.remote.behavior.immediate_ack_on_hole_fill = immediate;
      core::Testbed bed{cfg};
      core::SingleConnectionOptions opts;
      opts.reversed_order = reversed;
      auto test = core::make_registered_test(bed.probe(), bed.remote_addr(),
                                             core::TestSpec{"single-connection", 0, opts});
      core::TestRunConfig run;
      run.samples = 60;
      const auto result = bed.run_sync(*test, run, 3000);
      const char* variant = reversed ? "reversed (paper)" : "in-order";
      const char* policy = immediate ? "immediate (5681)" : "delayed";
      table.row({variant, policy, report::integer(result.forward.usable()),
                 report::integer(result.forward.ambiguous),
                 report::integer(result.forward.reordered)});

      report::Json row = report::Json::object();
      row.set("type", "row");
      row.set("study", "variant_vs_ack_policy");
      row.set("variant", variant);
      row.set("hole_fill_ack", policy);
      row.set("usable", result.forward.usable());
      row.set("ambiguous", result.forward.ambiguous);
      row.set("reordered", result.forward.reordered);
      artifact.write(row);
    }
  }
  table.print();
  std::printf("  -> the in-order variant is unusable against delayed-hole-fill stacks\n"
              "     (every sample coalesces into a lone final ACK, paper §III-B);\n"
              "     the reversed variant is usable everywhere.\n\n");
}

double striped_rate(metrics::MetricEngine& engine, const std::string& cell,
                    sim::BacklogModel model, std::size_t lanes, int gap_us, std::uint64_t seed) {
  core::TestbedConfig cfg;
  cfg.seed = seed;
  auto striped = sim::StripedLinkConfig{};
  striped.backlog_model = model;
  striped.lanes = lanes;
  cfg.forward.striped = striped;
  cfg.forward.ingress_link.bandwidth_bps = 1'000'000'000;
  cfg.forward.egress_link.bandwidth_bps = 1'000'000'000;
  core::Testbed bed{cfg};
  auto test = make_test("dual", bed);
  core::TestRunConfig run;
  run.samples = 600;
  run.inter_packet_gap = Duration::micros(gap_us);
  run.sample_spacing = Duration::millis(2);
  const auto result = bed.run_sync(*test, run, 3000);
  metrics::EngineSink sink{engine};
  core::publish_result(sink, cell, result.test_name, util::TimePoint::epoch(), result);
  return engine.aggregate(cell, result.test_name, true).rate_or(0.0);
}

void study_c(BenchArtifact& artifact) {
  std::printf("C. striped-link occupancy model and lane count (rate vs gap)\n");
  metrics::MetricEngine engine;
  report::Table table{std::vector<report::Column>{{"model/lanes", report::Align::kLeft},
                                                  {"0us", report::Align::kRight},
                                                  {"25us", report::Align::kRight},
                                                  {"50us", report::Align::kRight},
                                                  {"100us", report::Align::kRight}}};
  struct Variant {
    const char* label;
    sim::BacklogModel model;
    std::size_t lanes;
  };
  for (const Variant v : {Variant{"exponential, 2 lanes", sim::BacklogModel::kExponential, 2},
                          Variant{"uniform, 2 lanes", sim::BacklogModel::kUniform, 2},
                          Variant{"exponential, 4 lanes", sim::BacklogModel::kExponential, 4}}) {
    std::vector<std::string> cells{v.label};
    for (const int gap : {0, 25, 50, 100}) {
      const std::string cell = std::string{v.label} + "/gap" + std::to_string(gap);
      const double rate = striped_rate(engine, cell, v.model, v.lanes, gap,
                                       3300 + static_cast<std::uint64_t>(v.lanes * 7 + gap));
      cells.push_back(report::fixed(rate, 4));

      report::Json row = report::Json::object();
      row.set("type", "row");
      row.set("study", "striped_occupancy");
      row.set("variant", v.label);
      row.set("gap_us", gap);
      row.set("rate", rate);
      artifact.write(row);
    }
    table.row(std::move(cells));
  }
  table.print();
  std::printf("  -> the exponential model decays smoothly (Fig. 7's shape); the uniform\n"
              "     model cuts off hard near 2x its mean backlog (~50 us); more lanes\n"
              "     change the rate only marginally (overtaking is pairwise).\n");
}

}  // namespace

int main() {
  heading("Ablations over simulator design choices", "DESIGN.md §5 (no direct paper analogue)");
  BenchArtifact artifact{"ablation_table", "DESIGN.md §5"};
  study_a(artifact);
  study_b(artifact);
  study_c(artifact);
  return 0;
}
