// Reproduces the §IV-B host-admissibility finding for the dual-connection
// test: of the 50 measured hosts, 8 were ruled out for non-monotonic IPIDs
// (transparent load balancers) and 9 for a constant IPID of zero (Linux
// 2.4 with path-MTU discovery). The validator must sort a synthetic
// 50-host population with exactly that mix into the right buckets.
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "core/result_sink.hpp"
#include "metrics/engine.hpp"
#include "report/table.hpp"

namespace {

using namespace reorder;
using namespace reorder::bench;

struct HostSpec {
  const char* label;
  tcpip::IpidPolicy policy;
  std::size_t backends;
  int count;
};

// The paper's population: 33 plain counter-style hosts, 9 Linux 2.4
// (IPID 0), 8 behind load balancers. A couple of the "counter" hosts use
// Solaris-style per-destination counters — admissible per footnote 1.
constexpr HostSpec kPopulation[] = {
    {"global-counter (BSD/Windows)", tcpip::IpidPolicy::kGlobalCounter, 1, 28},
    {"per-destination (Solaris)", tcpip::IpidPolicy::kPerDestination, 1, 3},
    {"random-increment", tcpip::IpidPolicy::kRandomIncrement, 1, 2},
    {"constant zero (Linux 2.4)", tcpip::IpidPolicy::kConstantZero, 1, 9},
    {"load-balanced (2 backends)", tcpip::IpidPolicy::kGlobalCounter, 2, 5},
    {"load-balanced (4 backends)", tcpip::IpidPolicy::kGlobalCounter, 4, 3},
};

}  // namespace

int main() {
  heading("Dual-connection admissibility across a host population",
          "the §IV-B host-exclusion counts");
  BenchArtifact artifact{"ipid_survey", "§IV-B host exclusions"};

  std::map<std::string, int> verdict_counts;
  std::uint64_t seed = 9300;
  // Admissibility totals come from the metrics engine (one key per host
  // type): every run is published, the engine counts what was admissible.
  metrics::MetricEngine engine;
  metrics::EngineSink engine_sink{engine};

  report::Table table{std::vector<report::Column>{{"host type", report::Align::kLeft},
                                                  {"validator verdict", report::Align::kLeft},
                                                  {"dual test", report::Align::kLeft}}};
  for (const auto& spec : kPopulation) {
    for (int i = 0; i < spec.count; ++i) {
      core::TestbedConfig cfg;
      cfg.seed = ++seed;
      cfg.backends = spec.backends;
      cfg.remote = core::default_remote_config();
      cfg.remote.ipid_policy = spec.policy;
      core::Testbed bed{cfg};

      auto test = core::TestRegistry::global().create_as<core::DualConnectionTest>(
          bed.probe(), bed.remote_addr(), core::TestSpec{"dual-connection"});
      core::TestRunConfig run;
      run.samples = 5;
      const auto result = bed.run_sync(*test, run);
      core::publish_result(engine_sink, spec.label, result.test_name, util::TimePoint::epoch(),
                           result, static_cast<std::size_t>(i));
      const auto verdict = test->last_validation().verdict;
      ++verdict_counts[core::to_string(verdict)];
      if (i == 0) {
        table.row({spec.label, core::to_string(verdict), result.admissible ? "runs" : "ruled out"});
      }

      report::Json row = report::Json::object();
      row.set("type", "row");
      row.set("host_type", spec.label);
      row.set("backends", spec.backends);
      row.set("verdict", core::to_string(verdict));
      row.set("admissible", result.admissible);
      artifact.write(row);
    }
  }
  table.print();

  // Snapshot reads off the engine: measured / admissible per host type.
  std::uint64_t admissible = 0;
  std::uint64_t total = 0;
  for (const auto& [target, test] : engine.keys()) {
    total += engine.measurements(target, test);
    admissible += engine.admissible_measurements(target, test);
  }

  std::printf("\nVerdict totals over %llu hosts:\n", static_cast<unsigned long long>(total));
  report::Table totals{std::vector<report::Column>{{"verdict", report::Align::kLeft},
                                                   {"hosts", report::Align::kRight}}};
  for (const auto& [name, count] : verdict_counts) {
    totals.row({name, report::integer(count)});
  }
  totals.print();

  report::Json summary = report::Json::object();
  summary.set("type", "summary");
  summary.set("hosts", total);
  summary.set("admissible", admissible);
  summary.set("ruled_out_load_balancer", verdict_counts["disjoint (load balancer)"]);
  summary.set("ruled_out_constant_zero", verdict_counts["constant-zero"]);
  artifact.write(summary);
  engine.emit_jsonl(artifact.jsonl());

  std::printf("\nadmissible for the dual test:  %llu / %llu\n",
              static_cast<unsigned long long>(admissible),
              static_cast<unsigned long long>(total));
  std::printf("ruled out (load balancer):     %d   (paper: 8)\n",
              verdict_counts["disjoint (load balancer)"]);
  std::printf("ruled out (constant zero):     %d   (paper: 9)\n",
              verdict_counts["constant-zero"]);
  return 0;
}
