// Reproduces the controlled validation of §IV-A.
//
// The paper routes all traffic through a FreeBSD router whose dummynet was
// modified to swap adjacent packets with a configured probability; forward
// and reverse means take every combination of {1,3,5,10,15,40}% (the TCP
// data-transfer test varies only the reverse rate), 100 samples per test,
// and each test's reported reorder counts are checked against packet
// traces: 114 tests, 8 forward / 2 reverse discrepancies, 99.99% of
// samples confirmed correct.
//
// Here the swap shaper plays dummynet's role and the trace taps play
// tcpdump's. Expect 114 rows and (in a deterministic simulator without the
// paper's implementation corner cases) zero or near-zero discrepancies.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "report/builders.hpp"

namespace {

using namespace reorder;
using namespace reorder::bench;

constexpr double kRates[] = {0.01, 0.03, 0.05, 0.10, 0.15, 0.40};
constexpr int kSamplesPerTest = 100;

report::ValidationReport::Row run_case(const std::string& test_name, std::optional<double> fwd_p,
                                       double rev_p, std::uint64_t seed) {
  core::TestbedConfig cfg;
  cfg.seed = seed;
  cfg.forward.swap_probability = fwd_p.value_or(0.0);
  cfg.reverse.swap_probability = rev_p;
  cfg.remote = core::default_remote_config(/*object_size=*/51 * 512);  // >= 100 pairs
  // The paper's remote stacks acknowledge hole fills promptly (BSD-style
  // "ack now when the reassembly queue drains"); model that here so the
  // single-connection reverse path is exercised.
  cfg.remote.behavior.immediate_ack_on_hole_fill = true;
  core::Testbed bed{cfg};

  auto test = make_test(test_name, bed);
  core::TestRunConfig run;
  run.samples = kSamplesPerTest;
  const auto result = bed.run_sync(*test, run, /*deadline_s=*/3000);

  report::ValidationReport::Row row;
  row.test = test_name;
  row.fwd_p = fwd_p;
  row.rev_p = rev_p;
  row.admissible = result.admissible;
  if (result.admissible) row.cmp = compare_to_truth(result, bed);
  return row;
}

}  // namespace

int main() {
  heading("Controlled validation", "the §IV-A experiment (114 dummynet configurations)");
  BenchArtifact artifact{"validation_table", "§IV-A"};

  report::ValidationReport report;
  std::uint64_t seed = 90'000;

  const std::vector<std::string> two_way{"single", "dual", "syn"};
  for (const auto& test : two_way) {
    for (const double fwd : kRates) {
      for (const double rev : kRates) {
        report.add(run_case(test, fwd, rev, ++seed));
      }
    }
  }
  // The TCP data-transfer test measures only the reverse path.
  for (const double rev : kRates) {
    report.add(run_case("data-transfer", std::nullopt, rev, ++seed));
  }

  report.table().print();
  report.emit_jsonl(artifact.jsonl(), kSamplesPerTest);

  const auto summary = report.summary(kSamplesPerTest);
  std::printf("\nSummary\n");
  std::printf("  tests run:                 %d   (paper: 114)\n", summary.tests_run);
  std::printf("  forward discrepant tests:  %d   (paper: 8)\n", summary.fwd_discrepant_tests);
  std::printf("  reverse discrepant tests:  %d   (paper: 2)\n", summary.rev_discrepant_tests);
  std::printf("  samples confirmed correct: %.3f%% (paper: 99.99%%)\n",
              100.0 * summary.confirmed_fraction().value_or(0.0));
  return 0;
}
