// Reproduces the controlled validation of §IV-A.
//
// The paper routes all traffic through a FreeBSD router whose dummynet was
// modified to swap adjacent packets with a configured probability; forward
// and reverse means take every combination of {1,3,5,10,15,40}% (the TCP
// data-transfer test varies only the reverse rate), 100 samples per test,
// and each test's reported reorder counts are checked against packet
// traces: 114 tests, 8 forward / 2 reverse discrepancies, 99.99% of
// samples confirmed correct.
//
// Here the swap shaper plays dummynet's role and the trace taps play
// tcpdump's. Expect 114 rows and (in a deterministic simulator without the
// paper's implementation corner cases) zero or near-zero discrepancies.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace reorder;
using namespace reorder::bench;

constexpr double kRates[] = {0.01, 0.03, 0.05, 0.10, 0.15, 0.40};
constexpr int kSamplesPerTest = 100;

struct Row {
  std::string test;
  double fwd_p;
  double rev_p;
  TruthComparison cmp;
  bool admissible;
};

Row run_case(const std::string& test_name, double fwd_p, double rev_p, std::uint64_t seed) {
  core::TestbedConfig cfg;
  cfg.seed = seed;
  cfg.forward.swap_probability = fwd_p;
  cfg.reverse.swap_probability = rev_p;
  cfg.remote = core::default_remote_config(/*object_size=*/51 * 512);  // >= 100 pairs
  // The paper's remote stacks acknowledge hole fills promptly (BSD-style
  // "ack now when the reassembly queue drains"); model that here so the
  // single-connection reverse path is exercised.
  cfg.remote.behavior.immediate_ack_on_hole_fill = true;
  core::Testbed bed{cfg};

  auto test = make_test(test_name, bed);
  core::TestRunConfig run;
  run.samples = kSamplesPerTest;
  const auto result = bed.run_sync(*test, run, /*deadline_s=*/3000);

  Row row;
  row.test = test_name;
  row.fwd_p = fwd_p;
  row.rev_p = rev_p;
  row.admissible = result.admissible;
  if (result.admissible) row.cmp = compare_to_truth(result, bed);
  return row;
}

}  // namespace

int main() {
  heading("Controlled validation", "the §IV-A experiment (114 dummynet configurations)");
  std::printf("%-14s %5s %5s | %8s %8s %5s | %8s %8s %5s\n", "test", "fwd%", "rev%", "rep.fwd",
              "act.fwd", "diff", "rep.rev", "act.rev", "diff");
  std::printf("%.*s\n", 86,
              "--------------------------------------------------------------------------------"
              "--------");

  int tests_run = 0;
  int fwd_discrepant_tests = 0;
  int rev_discrepant_tests = 0;
  long total_samples = 0;
  long mismatched_samples = 0;
  std::uint64_t seed = 90'000;

  const std::vector<std::string> two_way{"single", "dual", "syn"};
  for (const auto& test : two_way) {
    for (const double fwd : kRates) {
      for (const double rev : kRates) {
        const Row row = run_case(test, fwd, rev, ++seed);
        ++tests_run;
        const int fwd_diff = row.cmp.reported_fwd - row.cmp.actual_fwd;
        const int rev_diff = row.cmp.reported_rev - row.cmp.actual_rev;
        if (fwd_diff != 0 || row.cmp.fwd_mismatches != 0) ++fwd_discrepant_tests;
        if (rev_diff != 0 || row.cmp.rev_mismatches != 0) ++rev_discrepant_tests;
        total_samples += 2L * kSamplesPerTest;
        mismatched_samples += row.cmp.fwd_mismatches + row.cmp.rev_mismatches;
        std::printf("%-14s %5.0f %5.0f | %8d %8d %5d | %8d %8d %5d\n", row.test.c_str(),
                    fwd * 100, rev * 100, row.cmp.reported_fwd, row.cmp.actual_fwd, fwd_diff,
                    row.cmp.reported_rev, row.cmp.actual_rev, rev_diff);
      }
    }
  }
  // The TCP data-transfer test measures only the reverse path.
  for (const double rev : kRates) {
    const Row row = run_case("data-transfer", 0.0, rev, ++seed);
    ++tests_run;
    const int rev_diff = row.cmp.reported_rev - row.cmp.actual_rev;
    if (rev_diff != 0 || row.cmp.rev_mismatches != 0) ++rev_discrepant_tests;
    total_samples += row.cmp.verified_samples;
    mismatched_samples += row.cmp.rev_mismatches;
    std::printf("%-14s %5s %5.0f | %8s %8s %5s | %8d %8d %5d\n", "data-transfer", "-", rev * 100,
                "-", "-", "-", row.cmp.reported_rev, row.cmp.actual_rev, rev_diff);
  }

  std::printf("\nSummary\n");
  std::printf("  tests run:                 %d   (paper: 114)\n", tests_run);
  std::printf("  forward discrepant tests:  %d   (paper: 8)\n", fwd_discrepant_tests);
  std::printf("  reverse discrepant tests:  %d   (paper: 2)\n", rev_discrepant_tests);
  const double confirmed =
      100.0 * (1.0 - static_cast<double>(mismatched_samples) / static_cast<double>(total_samples));
  std::printf("  samples confirmed correct: %.3f%% (paper: 99.99%%)\n", confirmed);
  return 0;
}
