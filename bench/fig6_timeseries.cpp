// Reproduces Figure 6: forward-path reordering on one path over time, as
// measured by the Single Connection test and the SYN test side by side.
//
// The paper plots both tests' mean reordering rates against www.apple.com
// (whose load balancer rules out the dual-connection test) and argues the
// two independent techniques track the same underlying process. Here the
// path's swap probability drifts sinusoidally with a mild level shift;
// the two tests are interleaved exactly as the round-robin prober would.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/result_sink.hpp"
#include "metrics/engine.hpp"
#include "report/table.hpp"

namespace {

using namespace reorder;
using namespace reorder::bench;
using util::Duration;

constexpr int kPoints = 36;
constexpr int kSamplesPerMeasurement = 30;

double process_rate(int step) {
  // A slow diurnal-ish swell plus a congestion episode in the middle.
  const double base = 0.05 + 0.04 * std::sin(2.0 * M_PI * step / 24.0);
  const double episode = (step >= 14 && step < 22) ? 0.08 : 0.0;
  return base + episode;
}

}  // namespace

int main() {
  heading("Single Connection vs SYN test over time on one path", "Figure 6");
  BenchArtifact artifact{"fig6_timeseries", "Figure 6"};

  core::TestbedConfig cfg;
  cfg.seed = 606;
  cfg.forward.swap_probability = process_rate(0);
  // Like apple.com, the host sits behind a load balancer; the SYN and
  // single-connection tests are the ones that still work (paper caption).
  cfg.backends = 4;
  cfg.remote = core::default_remote_config();
  cfg.remote.behavior.immediate_ack_on_hole_fill = true;
  core::Testbed bed{cfg};

  auto single = make_test("single", bed);
  auto syn = make_test("syn", bed);

  // The interleaved measurements stream into a metrics engine; the table
  // and comparison below are built from its per-test rate series.
  metrics::MetricEngine engine;
  metrics::EngineSink engine_sink{engine};
  const std::string target = "apple-like";

  std::vector<double> t_minutes;
  // Per-step rates, read back from the engine's growing rate series
  // after each step. The series holds only measurements with usable
  // samples, so alignment is by growth, not by step index: a step whose
  // measurement produced no usable rate records 0.0 in its own row
  // instead of shifting every later row.
  std::vector<double> single_by_step;
  std::vector<double> syn_by_step;
  std::size_t single_seen = 0;
  std::size_t syn_seen = 0;
  for (int step = 0; step < kPoints; ++step) {
    bed.forward_shaper()->set_swap_probability(process_rate(step));

    core::TestRunConfig run;
    run.samples = kSamplesPerMeasurement;
    for (auto* test : {single.get(), syn.get()}) {
      const util::TimePoint at = bed.loop().now();
      const auto result = bed.run_sync(*test, run);
      core::publish_result(engine_sink, target, result.test_name, at, result,
                           static_cast<std::size_t>(2 * step) + (test == syn.get() ? 1 : 0));
      const auto series = engine.rate_series(target, result.test_name, /*forward=*/true);
      auto& by_step = test == syn.get() ? syn_by_step : single_by_step;
      auto& seen = test == syn.get() ? syn_seen : single_seen;
      by_step.push_back(series.size() > seen ? series.back() : 0.0);
      seen = series.size();
    }
    t_minutes.push_back(bed.loop().now().seconds_f() / 60.0);
    bed.loop().advance(Duration::seconds(30));
  }

  report::Table table = report::Table::with_headers({"t(min)", "process", "single-conn", "syn"});
  double max_gap = 0.0;
  for (int step = 0; step < kPoints; ++step) {
    const auto i = static_cast<std::size_t>(step);
    const double single_rate = single_by_step[i];
    const double syn_rate = syn_by_step[i];
    table.row({report::fixed(t_minutes[i], 1), report::fixed(process_rate(step), 3),
               report::fixed(single_rate, 3), report::fixed(syn_rate, 3)});

    report::Json row = report::Json::object();
    row.set("type", "row");
    row.set("t_min", t_minutes[i]);
    row.set("process_rate", process_rate(step));
    row.set("single_rate", single_rate);
    row.set("syn_rate", syn_rate);
    artifact.write(row);

    max_gap = std::max(max_gap, std::fabs(single_rate - syn_rate));
  }

  table.print();

  report::Json summary = report::Json::object();
  summary.set("type", "summary");
  summary.set("max_single_vs_syn_gap", max_gap);
  artifact.write(summary);
  engine.emit_jsonl(artifact.jsonl());

  std::printf("\nlargest single-vs-syn gap in a window: %.3f\n", max_gap);
  std::printf("(paper: the two tests track one another; residual gaps reflect\n"
              " sampling noise because the samples are taken at different times)\n");
  return 0;
}
