// Reproduces Figure 6: forward-path reordering on one path over time, as
// measured by the Single Connection test and the SYN test side by side.
//
// The paper plots both tests' mean reordering rates against www.apple.com
// (whose load balancer rules out the dual-connection test) and argues the
// two independent techniques track the same underlying process. Here the
// path's swap probability drifts sinusoidally with a mild level shift;
// the two tests are interleaved exactly as the round-robin prober would.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "report/table.hpp"

namespace {

using namespace reorder;
using namespace reorder::bench;
using util::Duration;

constexpr int kPoints = 36;
constexpr int kSamplesPerMeasurement = 30;

double process_rate(int step) {
  // A slow diurnal-ish swell plus a congestion episode in the middle.
  const double base = 0.05 + 0.04 * std::sin(2.0 * M_PI * step / 24.0);
  const double episode = (step >= 14 && step < 22) ? 0.08 : 0.0;
  return base + episode;
}

}  // namespace

int main() {
  heading("Single Connection vs SYN test over time on one path", "Figure 6");
  BenchArtifact artifact{"fig6_timeseries", "Figure 6"};

  core::TestbedConfig cfg;
  cfg.seed = 606;
  cfg.forward.swap_probability = process_rate(0);
  // Like apple.com, the host sits behind a load balancer; the SYN and
  // single-connection tests are the ones that still work (paper caption).
  cfg.backends = 4;
  cfg.remote = core::default_remote_config();
  cfg.remote.behavior.immediate_ack_on_hole_fill = true;
  core::Testbed bed{cfg};

  auto single = make_test("single", bed);
  auto syn = make_test("syn", bed);

  report::Table table = report::Table::with_headers({"t(min)", "process", "single-conn", "syn"});

  double max_gap = 0.0;
  for (int step = 0; step < kPoints; ++step) {
    bed.forward_shaper()->set_swap_probability(process_rate(step));

    core::TestRunConfig run;
    run.samples = kSamplesPerMeasurement;
    const auto single_result = bed.run_sync(*single, run);
    const auto syn_result = bed.run_sync(*syn, run);
    const double t_min = bed.loop().now().seconds_f() / 60.0;
    const double single_rate = single_result.forward.rate_or(0.0);
    const double syn_rate = syn_result.forward.rate_or(0.0);
    table.row({report::fixed(t_min, 1), report::fixed(process_rate(step), 3),
               report::fixed(single_rate, 3), report::fixed(syn_rate, 3)});

    report::Json row = report::Json::object();
    row.set("type", "row");
    row.set("t_min", t_min);
    row.set("process_rate", process_rate(step));
    row.set("single_rate", single_rate);
    row.set("syn_rate", syn_rate);
    artifact.write(row);

    max_gap = std::max(max_gap, std::fabs(single_rate - syn_rate));
    bed.loop().advance(Duration::seconds(30));
  }

  table.print();

  report::Json summary = report::Json::object();
  summary.set("type", "summary");
  summary.set("max_single_vs_syn_gap", max_gap);
  artifact.write(summary);

  std::printf("\nlargest single-vs-syn gap in a window: %.3f\n", max_gap);
  std::printf("(paper: the two tests track one another; residual gaps reflect\n"
              " sampling noise because the samples are taken at different times)\n");
  return 0;
}
