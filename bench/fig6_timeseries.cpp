// Reproduces Figure 6: forward-path reordering on one path over time, as
// measured by the Single Connection test and the SYN test side by side.
//
// The paper plots both tests' mean reordering rates against www.apple.com
// (whose load balancer rules out the dual-connection test) and argues the
// two independent techniques track the same underlying process. Here the
// path's swap probability drifts sinusoidally with a mild level shift;
// the two tests are interleaved exactly as the round-robin prober would.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace reorder;
using namespace reorder::bench;
using util::Duration;

constexpr int kPoints = 36;
constexpr int kSamplesPerMeasurement = 30;

double process_rate(int step) {
  // A slow diurnal-ish swell plus a congestion episode in the middle.
  const double base = 0.05 + 0.04 * std::sin(2.0 * M_PI * step / 24.0);
  const double episode = (step >= 14 && step < 22) ? 0.08 : 0.0;
  return base + episode;
}

}  // namespace

int main() {
  heading("Single Connection vs SYN test over time on one path", "Figure 6");

  core::TestbedConfig cfg;
  cfg.seed = 606;
  cfg.forward.swap_probability = process_rate(0);
  // Like apple.com, the host sits behind a load balancer; the SYN and
  // single-connection tests are the ones that still work (paper caption).
  cfg.backends = 4;
  cfg.remote = core::default_remote_config();
  cfg.remote.behavior.immediate_ack_on_hole_fill = true;
  core::Testbed bed{cfg};

  auto single = make_test("single", bed);
  auto syn = make_test("syn", bed);

  std::printf("%-8s %10s %14s %10s\n", "t(min)", "process", "single-conn", "syn");
  std::printf("---------------------------------------------\n");

  double max_gap = 0.0;
  for (int step = 0; step < kPoints; ++step) {
    bed.forward_shaper()->set_swap_probability(process_rate(step));

    core::TestRunConfig run;
    run.samples = kSamplesPerMeasurement;
    const auto single_result = bed.run_sync(*single, run);
    const auto syn_result = bed.run_sync(*syn, run);
    const double t_min = bed.loop().now().seconds_f() / 60.0;
    std::printf("%-8.1f %10.3f %14.3f %10.3f\n", t_min, process_rate(step),
                single_result.forward.rate(), syn_result.forward.rate());
    max_gap = std::max(max_gap,
                       std::fabs(single_result.forward.rate() - syn_result.forward.rate()));
    bed.loop().advance(Duration::seconds(30));
  }

  std::printf("\nlargest single-vs-syn gap in a window: %.3f\n", max_gap);
  std::printf("(paper: the two tests track one another; residual gaps reflect\n"
              " sampling noise because the samples are taken at different times)\n");
  return 0;
}
