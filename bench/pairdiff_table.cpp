// Reproduces the §IV-B cross-test consistency analysis.
//
// For each host the paper interleaves all four tests for 20 days, then
// runs a paired-difference test (Jain) on each pair of per-measurement
// rate series at a 99.9% confidence interval; the null hypothesis is that
// the tests measure the same process. Reported: single vs SYN agree on
// 78% of forward and 93% of reverse paths; the data-transfer test matches
// SYN/dual (90%) but differs from single-connection, and under heavy
// reordering reports *less than half* the reordering of the others
// because its full-sized packets ride further apart in time.
//
// The host population here mixes stationary swap-shaper paths (where all
// tests agree) with striped time-dependent paths (where the data-transfer
// test's larger packets legitimately see less reordering).
#include <cstdio>

#include "bench_common.hpp"
#include "core/survey_engine.hpp"
#include "metrics/engine.hpp"
#include "report/builders.hpp"

namespace {

using namespace reorder;
using namespace reorder::bench;
using util::Duration;

constexpr int kHosts = 12;
constexpr int kRounds = 10;
constexpr int kSamples = 25;

}  // namespace

int main() {
  heading("Pair-difference consistency between tests", "the §IV-B paired analysis");
  BenchArtifact artifact{"pairdiff_table", "§IV-B paired analysis"};

  util::Rng rng{8181};
  report::PairDifferenceReport report;
  stats::RunningStats dt_ratio;  // data-transfer rate / syn rate on striped paths

  const std::vector<std::string> tests{"single", "dual", "syn", "data-transfer"};

  for (int host = 0; host < kHosts; ++host) {
    const bool striped_path = host % 2 == 1;
    core::TestbedConfig cfg;
    cfg.seed = 8200 + static_cast<std::uint64_t>(host);
    cfg.remote = core::default_remote_config(/*object_size=*/26 * 512);
    cfg.remote.behavior.immediate_ack_on_hole_fill = true;
    if (striped_path) {
      // Time-dependent reordering on the reverse path: affects every
      // test's reply stream, but the data transfer's large segments are
      // spaced further apart and dodge most of it (§IV-C).
      auto striped = sim::StripedLinkConfig{};
      striped.contention_probability = 0.35;  // a heavily reordering path
      cfg.reverse.striped = striped;
      cfg.forward.swap_probability = rng.uniform(0.01, 0.05);
    } else {
      cfg.forward.swap_probability = rng.uniform(0.02, 0.2);
      cfg.reverse.swap_probability = rng.uniform(0.01, 0.1);
    }
    core::Testbed bed{cfg};

    core::SurveyEngine session{bed.loop()};
    std::vector<core::TestSpec> suite;
    for (const auto& t : tests) suite.emplace_back(t);
    session.add_target("host", bed.probe(), bed.remote_addr(), suite);

    core::TestRunConfig run;
    run.samples = kSamples;
    session.run(run, kRounds, Duration::seconds(1));

    // Host-level paired verdicts come straight from the survey engine's
    // metric snapshots (rate series + paired test live behind compare()).
    const auto& registry = core::TestRegistry::global();
    for (std::size_t a = 0; a < tests.size(); ++a) {
      for (std::size_t b = a + 1; b < tests.size(); ++b) {
        for (const bool forward : {true, false}) {
          if (forward && (tests[a] == "data-transfer" || tests[b] == "data-transfer")) continue;
          report.add_compare(session.metrics(), "host", registry.canonical_name(tests[a]),
                             registry.canonical_name(tests[b]), forward, 0.999);
        }
      }
    }
    if (striped_path) {
      const auto dt = session.aggregate("host", "data-transfer", false);
      const auto syn = session.aggregate("host", "syn", false);
      if (syn.rate_or(0.0) > 0) dt_ratio.add(dt.rate_or(0.0) / *syn.rate());
    }
    session.metrics().emit_jsonl(artifact.jsonl());
  }

  report.table().print();
  report.emit_jsonl(artifact.jsonl());

  report::Json summary = report::Json::object();
  summary.set("type", "summary");
  summary.set("hosts", kHosts);
  summary.set("dt_over_syn_reverse_ratio_striped", dt_ratio.mean());
  artifact.write(summary);

  std::printf("\npaper anchors: single-vs-syn 78%% fwd / 93%% rev; data-transfer matches\n");
  std::printf("syn & dual on ~90%% of hosts but diverges on heavily reordering paths.\n");
  std::printf("\ndata-transfer / syn reverse-rate ratio on striped (heavy) paths: %.2f\n",
              dt_ratio.mean());
  std::printf("(paper: \"sometimes less than half as many reordering events\")\n");
  return 0;
}
