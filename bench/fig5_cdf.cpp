// Reproduces Figure 5: the CDF of reordering rates across all measured
// paths, forward and reverse.
//
// The paper measured 50 Internet hosts (15 hand-picked + 35 random) from
// UCSD for 20 days and found that over 40% of paths saw some reordering,
// with more forward- than reverse-path reordering from their vantage
// point. Here the host population is synthetic: 60% of paths are clean,
// the rest draw a forward swap probability from a heavy-ish tail and a
// smaller reverse probability — the same qualitative shape the paper's
// vantage point produced.
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "core/result_sink.hpp"
#include "metrics/engine.hpp"
#include "report/builders.hpp"
#include "util/random.hpp"

namespace {

using namespace reorder;
using namespace reorder::bench;

constexpr int kHosts = 50;
constexpr int kMeasurementsPerHost = 8;
constexpr int kSamplesPerMeasurement = 15;  // the paper's per-measurement count

struct PathTruth {
  double fwd_p;
  double rev_p;
};

PathTruth draw_path(util::Rng& rng) {
  PathTruth t{0.0, 0.0};
  if (rng.bernoulli(0.44)) {  // "over 40% of the paths tested"
    t.fwd_p = std::min(0.35, rng.exponential(0.06));
    t.rev_p = t.fwd_p * rng.uniform(0.1, 0.6);  // reverse < forward (§IV-B)
  }
  return t;
}

}  // namespace

int main() {
  heading("CDF of reordering rates across paths", "Figure 5");
  BenchArtifact artifact{"fig5_cdf", "Figure 5"};

  util::Rng population_rng{424242};
  report::RateCdfReport cdf{{0.0, 0.005, 0.01, 0.02, 0.03, 0.05, 0.08, 0.10, 0.15, 0.20, 0.30,
                             0.40}};

  // Every measurement streams into one metrics engine (target = host);
  // the per-path pooling below is a snapshot read, not a hand loop.
  metrics::MetricEngine engine;
  metrics::EngineSink engine_sink{engine};

  for (int host = 0; host < kHosts; ++host) {
    const PathTruth truth = draw_path(population_rng);
    core::TestbedConfig cfg;
    cfg.seed = 5000 + static_cast<std::uint64_t>(host);
    cfg.forward.swap_probability = truth.fwd_p;
    cfg.reverse.swap_probability = truth.rev_p;
    cfg.remote = core::default_remote_config();
    cfg.remote.behavior.immediate_ack_on_hole_fill = true;
    core::Testbed bed{cfg};

    const std::string target = "host-" + std::to_string(host);
    auto test = make_test("syn", bed);
    for (int m = 0; m < kMeasurementsPerHost; ++m) {
      core::TestRunConfig run;
      run.samples = kSamplesPerMeasurement;
      const util::TimePoint at = bed.loop().now();
      const auto result = bed.run_sync(*test, run);
      core::publish_result(engine_sink, target, result.test_name, at, result,
                           static_cast<std::size_t>(m));
      bed.loop().advance(util::Duration::seconds(2));
    }
    cdf.add_target(engine, target);
  }

  cdf.table().print();
  cdf.emit_jsonl(artifact.jsonl());
  engine.emit_jsonl(artifact.jsonl());

  std::printf("\npaths measured:              %zu   (paper: 50)\n", cdf.paths());
  std::printf("paths with some reordering:  %d (%.0f%%)   (paper: >40%%)\n",
              cdf.paths_with_reordering(), 100.0 * cdf.paths_with_reordering() / kHosts);
  std::printf("median forward rate:         %.4f\n", cdf.forward().quantile(0.5));
  std::printf("median reverse rate:         %.4f\n", cdf.reverse().quantile(0.5));
  std::printf("mean fwd > mean rev:         %s   (paper: forward dominates)\n",
              cdf.forward().quantile(0.9) >= cdf.reverse().quantile(0.9) ? "yes" : "no");
  return 0;
}
