// Shared helpers for the experiment-reproduction binaries. Each binary
// regenerates one table or figure from the paper's evaluation (§IV); they
// all run with no arguments and print to stdout.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "core/test_registry.hpp"
#include "core/testbed.hpp"
#include "trace/analyzer.hpp"

namespace reorder::bench {

inline void heading(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("(reproduces %s of Bellardo & Savage, \"Measuring Packet Reordering\", IMC 2002)\n\n",
              paper_ref.c_str());
}

/// Builds a technique against the testbed's remote by registry name
/// (canonical names or aliases — "single", "dual", "syn", "data-transfer",
/// "ping-burst", ...). Port 0 selects the technique's conventional port.
/// Unknown names are a hard error (std::invalid_argument), not a fallback.
inline std::unique_ptr<core::ReorderTest> make_test(const std::string& name, core::Testbed& bed,
                                                    std::uint16_t port = 0) {
  return core::make_registered_test(bed.probe(), bed.remote_addr(), core::TestSpec{name, port});
}

/// Ground-truth comparison for one run (the §IV-A methodology): counts
/// reorder events the test reported vs what the traces show, plus
/// per-sample disagreements.
struct TruthComparison {
  int reported_fwd{0};
  int actual_fwd{0};
  int reported_rev{0};
  int actual_rev{0};
  int fwd_mismatches{0};
  int rev_mismatches{0};
  int verified_samples{0};
};

inline TruthComparison compare_to_truth(const core::TestRunResult& result, core::Testbed& bed) {
  TruthComparison c;
  for (const auto& s : result.samples) {
    using core::Ordering;
    if (s.forward == Ordering::kInOrder || s.forward == Ordering::kReordered) {
      const auto truth = trace::pair_ground_truth(bed.remote_ingress_trace(), s.fwd_uid_first,
                                                  s.fwd_uid_second);
      if (truth != trace::PairGroundTruth::kIncomplete) {
        const bool said = s.forward == Ordering::kReordered;
        const bool was = truth == trace::PairGroundTruth::kReordered;
        c.reported_fwd += said ? 1 : 0;
        c.actual_fwd += was ? 1 : 0;
        c.fwd_mismatches += said != was ? 1 : 0;
        ++c.verified_samples;
      }
    }
    if ((s.reverse == Ordering::kInOrder || s.reverse == Ordering::kReordered) &&
        s.rev_uid_first != 0 && s.rev_uid_second != 0) {
      const auto truth = trace::pair_ground_truth(bed.remote_egress_trace(), s.rev_uid_first,
                                                  s.rev_uid_second);
      if (truth != trace::PairGroundTruth::kIncomplete) {
        const bool said = s.reverse == Ordering::kReordered;
        const bool was = truth == trace::PairGroundTruth::kReordered;
        c.reported_rev += said ? 1 : 0;
        c.actual_rev += was ? 1 : 0;
        c.rev_mismatches += said != was ? 1 : 0;
        ++c.verified_samples;
      }
    }
  }
  return c;
}

}  // namespace reorder::bench
