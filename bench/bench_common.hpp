// Shared helpers for the experiment-reproduction binaries. Each binary
// regenerates one table or figure from the paper's evaluation (§IV); they
// all run with no arguments, print their tables to stdout through the
// report layer, and stream a machine-readable JSONL artifact alongside
// (the BENCH_*.jsonl the CI perf trajectory tracks).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include "core/ground_truth.hpp"
#include "core/test_registry.hpp"
#include "core/testbed.hpp"
#include "report/jsonl.hpp"

namespace reorder::bench {

inline void heading(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("(reproduces %s of Bellardo & Savage, \"Measuring Packet Reordering\", IMC 2002)\n\n",
              paper_ref.c_str());
}

/// Builds a technique against the testbed's remote by registry name
/// (canonical names or aliases — "single", "dual", "syn", "data-transfer",
/// "ping-burst", ...). Port 0 selects the technique's conventional port.
/// Unknown names are a hard error (std::invalid_argument), not a fallback.
inline std::unique_ptr<core::ReorderTest> make_test(const std::string& name, core::Testbed& bed,
                                                    std::uint16_t port = 0) {
  return core::make_registered_test(bed.probe(), bed.remote_addr(), core::TestSpec{name, port});
}

/// Ground-truth comparison against the testbed's validation taps (the
/// §IV-A methodology). The implementation lives in core/ground_truth —
/// this wrapper just supplies the canonical tap pair.
inline core::TruthComparison compare_to_truth(const core::TestRunResult& result,
                                              core::Testbed& bed) {
  return core::compare_to_truth(result, bed.remote_ingress_trace(), bed.remote_egress_trace());
}

/// The bench's JSONL artifact stream. Opens
/// $REORDER_BENCH_JSONL_DIR/<bench>.jsonl (the directory must exist) or
/// ./<bench>.jsonl when the env var is unset, leads with one
/// {"type":"bench",...} identification line, and reports the record count
/// to stderr on close so CI logs show what was captured.
class BenchArtifact {
 public:
  BenchArtifact(const std::string& bench_name, const std::string& paper_ref)
      : name_{bench_name} {
    const char* dir = std::getenv("REORDER_BENCH_JSONL_DIR");
    path_ = (dir != nullptr && *dir != '\0' ? std::string{dir} + "/" : std::string{}) +
            bench_name + ".jsonl";
    file_.open(path_);
    if (!file_) {
      std::fprintf(stderr, "[%s] cannot open %s; JSONL artifact disabled\n", bench_name.c_str(),
                   path_.c_str());
    }
    report::Json meta = report::Json::object();
    meta.set("type", "bench");
    meta.set("bench", bench_name);
    meta.set("paper_ref", paper_ref);
    write(meta);
  }

  ~BenchArtifact() {
    if (file_.is_open()) {
      std::fprintf(stderr, "[%s] wrote %zu JSONL records to %s\n", name_.c_str(),
                   writer_.lines_written(), path_.c_str());
    }
  }

  report::JsonlWriter& jsonl() { return writer_; }
  void write(const report::Json& line) {
    if (file_.is_open()) writer_.write(line);
  }
  const std::string& path() const { return path_; }

 private:
  std::string name_;
  std::string path_;
  std::ofstream file_;
  report::JsonlWriter writer_{file_};
};

}  // namespace reorder::bench
