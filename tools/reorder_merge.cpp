// reorder-merge: fold the canonical JSONL artifacts of N survey runs
// into one fleet-wide report.
//
// A production survey is many survey_fleet processes — different
// machines, different fleet slices, different days — each leaving one
// canonical JSONL stream. This tool merges them into the stream one run
// over the combined fleet would have produced: measurements re-sorted
// into the canonical (target, test, at) order and renumbered, metric
// snapshots restored and pooled through the bit-exact merge contract,
// lifecycle and degraded-mode accounting summed so the combined fleet
// stays fully accounted for.
//
//   $ survey_fleet --targets=8 --shards=4 --jsonl=east.jsonl  ...
//   $ survey_fleet --targets=8 --shards=4 --jsonl=west.jsonl  ...
//   $ reorder-merge --out=fleet.jsonl east.jsonl west.jsonl
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "core/fleet_merge.hpp"
#include "report/jsonl.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace reorder;

  std::string out_path;
  util::Flags flags{"reorder-merge", "merge canonical survey JSONL artifacts into one"};
  flags.add_string("out", &out_path, "write the merged stream here (default: stdout)");
  if (!flags.parse(argc, argv)) return 1;
  if (flags.positional().empty()) {
    std::fprintf(stderr, "reorder-merge: no input files\n%s", flags.usage().c_str());
    return 1;
  }

  try {
    std::vector<std::vector<report::Json>> runs;
    runs.reserve(flags.positional().size());
    for (const std::string& path : flags.positional()) {
      runs.push_back(report::read_jsonl_file(path));
    }
    const std::vector<report::Json> merged = core::merge_fleet_streams(runs);

    if (out_path.empty()) {
      for (const report::Json& record : merged) {
        std::printf("%s\n", record.dump().c_str());
      }
    } else {
      // Crash-safe emission: the artifact appears only complete.
      report::AtomicJsonlFile file{out_path};
      for (const report::Json& record : merged) file.writer().write(record);
      file.commit();
      std::fprintf(stderr, "reorder-merge: %zu records from %zu runs -> %s\n", merged.size(),
                   runs.size(), out_path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "reorder-merge: %s\n", e.what());
    return 1;
  }
}
