#!/usr/bin/env python3
"""Perf-regression gate over google-benchmark JSON output.

Two subcommands:

  baseline <gbench.json> -o BENCH_baseline.json
      Extracts per-benchmark medians (cpu_time, ns) from a google-benchmark
      ``--benchmark_out`` JSON file into the small, stable baseline format
      checked into the repo:
          {"time_unit": "ns", "benchmarks": {"BM_Foo/1000": 123.4, ...}}

  check <BENCH_baseline.json> <gbench.json> [--max-regression 0.25]
                                            [--calibrate BM_A --calibrate BM_B]
      Compares the current run's medians against the baseline and exits
      non-zero if any benchmark present in both is more than
      ``max_regression`` slower (1.25x by default). Benchmarks missing from
      either side are reported but do not fail the gate (renames should not
      brick CI); improvements are reported for the log.

      --calibrate names benchmarks whose implementation is frozen (the
      retained reference-scheduler benches are ideal): the geometric mean
      of their current/baseline ratios becomes a machine-speed scale that
      divides every other benchmark's ratio before gating. This makes the
      gate meaningful when the baseline was captured on different hardware
      than the run being checked (a checked-in baseline vs a CI runner) —
      it then gates performance *relative to the frozen reference on the
      same machine*, which is what a real regression changes. Calibration
      benches themselves are reported but not gated.

The gate intentionally tracks only benchmarks listed in the baseline, which
is curated to the stable scheduling / codec / end-to-end set.
"""

import argparse
import json
import sys

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def _load_medians(path):
    """name -> median cpu_time in ns from a google-benchmark JSON file.

    Prefers explicit ``_median`` aggregates (present with
    --benchmark_repetitions); otherwise computes the median over the plain
    iteration runs of each benchmark name.
    """
    with open(path) as f:
        doc = json.load(f)
    aggregates = {}
    runs = {}
    for b in doc.get("benchmarks", []):
        unit = _UNIT_NS[b.get("time_unit", "ns")]
        cpu_ns = float(b["cpu_time"]) * unit
        if b.get("run_type") == "aggregate":
            if b.get("aggregate_name") == "median":
                aggregates[b["run_name"]] = cpu_ns
        else:
            runs.setdefault(b["name"], []).append(cpu_ns)
    if aggregates:
        return aggregates
    out = {}
    for name, samples in runs.items():
        samples.sort()
        n = len(samples)
        mid = samples[n // 2] if n % 2 else 0.5 * (samples[n // 2 - 1] + samples[n // 2])
        out[name] = mid
    return out


def cmd_baseline(args):
    medians = _load_medians(args.gbench_json)
    if not medians:
        print("no benchmark entries found", file=sys.stderr)
        return 1
    doc = {"time_unit": "ns", "benchmarks": {k: round(v, 2) for k, v in sorted(medians.items())}}
    with open(args.output, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"wrote {args.output} with {len(medians)} benchmarks")
    return 0


def cmd_check(args):
    with open(args.baseline) as f:
        baseline = json.load(f)["benchmarks"]
    current = _load_medians(args.gbench_json)

    scale = 1.0
    calibrators = [c for c in (args.calibrate or []) if c in baseline and c in current]
    if calibrators:
        import math
        log_sum = sum(math.log(current[c] / baseline[c]) for c in calibrators)
        scale = math.exp(log_sum / len(calibrators))
        print(f"machine-speed scale from {len(calibrators)} calibration bench(es): {scale:.3f}x")
    elif args.calibrate:
        print("warning: no calibration benchmark present in both files; scale=1.0",
              file=sys.stderr)

    failures = []
    print(f"{'benchmark':<44} {'baseline':>12} {'current':>12} {'ratio':>7}")
    for name, base_ns in sorted(baseline.items()):
        cur_ns = current.get(name)
        if cur_ns is None:
            print(f"{name:<44} {base_ns:>12.1f} {'missing':>12} {'-':>7}")
            continue
        ratio = cur_ns / (base_ns * scale) if base_ns > 0 else float("inf")
        if name in calibrators:
            print(f"{name:<44} {base_ns:>12.1f} {cur_ns:>12.1f} {ratio:>6.2f}x  (calibration)")
            continue
        flag = ""
        if ratio > 1.0 + args.max_regression:
            flag = "  << REGRESSION"
            failures.append((name, ratio))
        print(f"{name:<44} {base_ns:>12.1f} {cur_ns:>12.1f} {ratio:>6.2f}x{flag}")
    extra = sorted(set(current) - set(baseline))
    if extra:
        print(f"(not gated: {', '.join(extra)})")

    if failures:
        worst = max(failures, key=lambda f: f[1])
        print(
            f"\nFAIL: {len(failures)} benchmark(s) regressed more than "
            f"{args.max_regression:.0%} (worst: {worst[0]} at {worst[1]:.2f}x)",
            file=sys.stderr,
        )
        return 1
    print(f"\nOK: no benchmark regressed more than {args.max_regression:.0%}")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_base = sub.add_parser("baseline", help="write a baseline file from a gbench JSON")
    p_base.add_argument("gbench_json")
    p_base.add_argument("-o", "--output", required=True)
    p_base.set_defaults(func=cmd_baseline)

    p_check = sub.add_parser("check", help="fail on regression vs a baseline file")
    p_check.add_argument("baseline")
    p_check.add_argument("gbench_json")
    p_check.add_argument("--max-regression", type=float, default=0.25,
                         help="allowed slowdown fraction (default 0.25 = 25%%)")
    p_check.add_argument("--calibrate", action="append", default=[],
                         help="frozen benchmark whose ratio calibrates machine speed "
                              "(repeatable; excluded from gating)")
    p_check.set_defaults(func=cmd_check)

    args = parser.parse_args()
    sys.exit(args.func(args))


if __name__ == "__main__":
    main()
